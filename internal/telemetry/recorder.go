// Package telemetry is the live ops surface of the concurrent engine: a
// lock-free flight recorder of recent engine events, O(1)-memory P²
// quantile sketches for operation latency, and an HTTP hub serving
// Prometheus-text metrics, expvar, pprof and the flight-recorder tail.
//
// Unlike package obs — which measures *simulated* milliseconds and is
// exactly reproducible per seed — this package observes the *running
// process*: wall-clock waits and holds, sessions in flight, goroutines.
// Every entry point is nil-safe, so a disabled recorder or sketch costs
// one nil check at each instrumentation site and the zero-telemetry
// engine path stays at its pre-telemetry cost (guarded by the tier-4
// benchmarks in scripts/verify.sh).
//
// See docs/TELEMETRY.md for the endpoints, the flight-recorder dump
// format, and the procmon dashboard.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the flight recorder. Kinds are dotted
// component.event strings so dumps read like the obs span vocabulary.
const (
	EvOpBegin        = "op.begin"
	EvOpCommit       = "op.commit"
	EvLockAcquire    = "lock.acquire"
	EvLockRelease    = "lock.release"
	EvCacheInval     = "cache.invalidate"
	EvCacheRefresh   = "cache.refresh"
	EvVlogFlip       = "vlog.flip"
	EvVlogCheckpoint = "vlog.checkpoint"
	EvVlogFault      = "vlog.fault"
	EvFault          = "fault"
	EvWatchdog       = "watchdog.fire"
	EvViolation      = "oracle.violation"
	EvDetector       = "detector.fire"
	EvCancel         = "server.cancel"
)

// Event is one flight-recorder entry. I is the global record index (total
// order of Record calls); TNs is wall-clock nanoseconds since the
// recorder was created. Session and Seq default to -1 ("not applicable"):
// pre-commit events know their session but not yet their commit sequence.
type Event struct {
	I       int64  `json:"i"`
	TNs     int64  `json:"t_ns"`
	Kind    string `json:"kind"`
	Session int    `json:"session"`
	Seq     int    `json:"seq"`
	Name    string `json:"name,omitempty"`
	WaitNs  int64  `json:"wait_ns,omitempty"`
	HoldNs  int64  `json:"hold_ns,omitempty"`
	Detail  string `json:"detail,omitempty"`
	// Seqs carries the blocked frontier of an oracle-violation event: the
	// commit sequence of each operation no serial extension could
	// accommodate (aligned against the timeline by procstat).
	Seqs []int `json:"seqs,omitempty"`
}

// Recorder is a fixed-size lock-free ring of recent events. Writers claim
// a slot with one atomic add and publish the event with one atomic
// pointer store; readers snapshot by loading the pointers — no locks, no
// waiting, and safe under the race detector. When the ring wraps, the
// oldest events are overwritten (Dropped counts them).
//
// A nil *Recorder is the disabled state: Record on it is a no-op, so
// instrumented code pays one nil check when telemetry is off.
type Recorder struct {
	start time.Time
	slots []atomic.Pointer[Event]
	next  atomic.Int64

	autoMu sync.Mutex
	autoW  io.Writer
	autoF  string
}

// NewRecorder returns a recorder retaining the last size events (minimum
// 16; a few thousand covers seconds of 8-session traffic).
func NewRecorder(size int) *Recorder {
	if size < 16 {
		size = 16
	}
	return &Recorder{start: time.Now(), slots: make([]atomic.Pointer[Event], size)}
}

// Record appends one event, stamping its index and wall-clock offset.
// Safe for concurrent use and nil-safe. Recording a triggering kind
// (watchdog fire, oracle violation, vlog fault, generic fault)
// snapshots the ring and writes the configured auto-dump, turning the
// failure into a self-contained post-mortem.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.I = r.next.Add(1) - 1
	ev.TNs = time.Since(r.start).Nanoseconds()
	r.slots[ev.I%int64(len(r.slots))].Store(&ev)
	switch ev.Kind {
	case EvWatchdog, EvViolation, EvVlogFault, EvFault, EvDetector:
		r.autoDump(ev.Kind)
	}
}

// Op records a session-scoped event with the common fields filled in.
func (r *Recorder) Op(kind string, session, seq int, name string, waitNs, holdNs int64) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: kind, Session: session, Seq: seq, Name: name, WaitNs: waitNs, HoldNs: holdNs})
}

// VlogEvent adapts the recorder to vlog.Log.SetObserver: the validity
// log's flip/checkpoint/fault notifications become flight events (a
// fault triggers the auto-dump).
func (r *Recorder) VlogEvent(event string, id int, detail string) {
	if r == nil {
		return
	}
	r.Record(Event{Kind: event, Session: -1, Seq: -1, Name: fmt.Sprintf("proc:%d", id), Detail: detail})
}

// Len reports how many events have been recorded in total (including any
// overwritten by ring wrap).
func (r *Recorder) Len() int64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot returns the retained events oldest-first plus the count of
// older events lost to ring wrap. Events published mid-snapshot may be
// skipped or included; each returned event is internally consistent
// (writers publish whole *Event values).
func (r *Recorder) Snapshot() (events []Event, dropped int64) {
	if r == nil {
		return nil, 0
	}
	total := r.next.Load()
	events = make([]Event, 0, len(r.slots))
	floor := total - int64(len(r.slots))
	if floor < 0 {
		floor = 0
	}
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil && ev.I >= floor {
			events = append(events, *ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].I < events[j].I })
	if n := len(events); n > 0 {
		dropped = events[0].I
	} else {
		dropped = total
	}
	return events, dropped
}

// SetAutoDumpWriter directs automatic dumps (triggered by watchdog,
// violation and fault events) at w. Nil-safe.
func (r *Recorder) SetAutoDumpWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.autoMu.Lock()
	r.autoW = w
	r.autoF = ""
	r.autoMu.Unlock()
}

// SetAutoDumpFile directs automatic dumps at a file, created (truncated)
// at dump time so an armed-but-never-triggered recorder leaves no file.
func (r *Recorder) SetAutoDumpFile(path string) {
	if r == nil {
		return
	}
	r.autoMu.Lock()
	r.autoW = nil
	r.autoF = path
	r.autoMu.Unlock()
}

func (r *Recorder) autoDump(reason string) {
	r.autoMu.Lock()
	defer r.autoMu.Unlock()
	switch {
	case r.autoW != nil:
		r.dumpJSONL(r.autoW, reason)
	case r.autoF != "":
		f, err := os.Create(r.autoF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: auto-dump: %v\n", err)
			return
		}
		if err := r.dumpJSONL(f, reason); err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: auto-dump: %v\n", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "telemetry: flight recorder dumped to %s (reason: %s)\n", r.autoF, reason)
	}
}

// ---------------------------------------------------------------------------
// Dump format (JSONL, same typed-line convention as obs trace files)

// Record types in a flight dump.
const (
	RecordFlight     = "flight"
	RecordEvent      = "event"
	RecordContention = "contention"
)

// FlightRecord is the dump header: why the dump was taken and how much
// the ring retained.
type FlightRecord struct {
	Type    string `json:"type"`
	Reason  string `json:"reason"`
	Events  int    `json:"events"`
	Dropped int64  `json:"dropped"`
	// StartUnixNs anchors the events' relative TNs to wall-clock time.
	StartUnixNs int64 `json:"start_unix_ns"`
}

// EventRecord is one event line.
type EventRecord struct {
	Type string `json:"type"`
	Event
}

// LockContentionJSON is one lock's profile in a contention record and in
// BENCH_concurrent.json: acquisition counts, how many acquisitions
// actually waited, total/max wall-clock wait and hold, and this lock's
// share of the run's total wait time.
type LockContentionJSON struct {
	Name      string  `json:"name"`
	Acquires  int64   `json:"acquires"`
	Exclusive int64   `json:"exclusive"`
	Contended int64   `json:"contended"`
	WaitMs    float64 `json:"wait_ms"`
	HoldMs    float64 `json:"hold_ms"`
	MaxWaitUs float64 `json:"max_wait_us"`
	MaxHoldUs float64 `json:"max_hold_us"`
	WaitShare float64 `json:"wait_share"`
}

// ContentionRecord carries one run's lock-contention profile in a trace
// or flight dump.
type ContentionRecord struct {
	Type  string               `json:"type"`
	Run   string               `json:"run"`
	Locks []LockContentionJSON `json:"locks"`
}

// DumpJSONL writes the dump header followed by every retained event, one
// JSON object per line. The output round-trips through ReadDump and
// renders with `procstat`.
func (r *Recorder) DumpJSONL(w io.Writer, reason string) error {
	if r == nil {
		return nil
	}
	return r.dumpJSONL(w, reason)
}

func (r *Recorder) dumpJSONL(w io.Writer, reason string) error {
	events, dropped := r.Snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(FlightRecord{
		Type:        RecordFlight,
		Reason:      reason,
		Events:      len(events),
		Dropped:     dropped,
		StartUnixNs: r.start.UnixNano(),
	}); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(EventRecord{Type: RecordEvent, Event: ev}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Timeline writes a human-readable view of the retained events: one row
// per event with its wall-clock offset, session, sequence and durations.
func (r *Recorder) Timeline(w io.Writer) {
	if r == nil {
		return
	}
	events, dropped := r.Snapshot()
	WriteTimeline(w, events, dropped, nil)
}

// WriteTimeline renders events (oldest first) as an aligned table. mark,
// when non-nil, flags rows — procstat uses it to align a serializability
// violation's blocked operations against the timeline.
func WriteTimeline(w io.Writer, events []Event, dropped int64, mark func(Event) bool) {
	fmt.Fprintf(w, "flight recorder: %d events retained, %d dropped\n", len(events), dropped)
	if len(events) == 0 {
		return
	}
	fmt.Fprintf(w, "  %12s %4s %5s  %-16s %-22s %s\n", "t", "sess", "seq", "kind", "name", "detail")
	for _, ev := range events {
		sess, seq := "-", "-"
		if ev.Session >= 0 {
			sess = fmt.Sprintf("%d", ev.Session)
		}
		if ev.Seq >= 0 {
			seq = fmt.Sprintf("%d", ev.Seq)
		}
		var d []byte
		if ev.WaitNs > 0 {
			d = append(d, fmt.Sprintf("wait=%s ", time.Duration(ev.WaitNs))...)
		}
		if ev.HoldNs > 0 {
			d = append(d, fmt.Sprintf("hold=%s ", time.Duration(ev.HoldNs))...)
		}
		if ev.Detail != "" {
			d = append(d, ev.Detail...)
		}
		flag := " "
		if mark != nil && mark(ev) {
			flag = "*"
		}
		fmt.Fprintf(w, "%s %12s %4s %5s  %-16s %-22s %s\n",
			flag, time.Duration(ev.TNs).Round(time.Microsecond), sess, seq, ev.Kind, ev.Name, string(d))
	}
}

// Dump is the parsed contents of a flight-recorder JSONL dump.
type Dump struct {
	Headers    []FlightRecord
	Events     []Event
	Contention []ContentionRecord
}

// Violations returns the oracle-violation events in the dump.
func (d *Dump) Violations() []Event {
	var out []Event
	for _, ev := range d.Events {
		if ev.Kind == EvViolation {
			out = append(out, ev)
		}
	}
	return out
}

// ReadDump parses a flight-recorder JSONL stream. Unknown record types
// are skipped, so a dump can ride inside an obs trace file (and vice
// versa) without either reader choking.
func ReadDump(r io.Reader) (*Dump, error) {
	d := &Dump{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("telemetry: dump line %d: %w", lineNo, err)
		}
		switch probe.Type {
		case RecordFlight:
			var rec FlightRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("telemetry: dump line %d: %w", lineNo, err)
			}
			d.Headers = append(d.Headers, rec)
		case RecordEvent:
			var rec EventRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("telemetry: dump line %d: %w", lineNo, err)
			}
			d.Events = append(d.Events, rec.Event)
		case RecordContention:
			var rec ContentionRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("telemetry: dump line %d: %w", lineNo, err)
			}
			d.Contention = append(d.Contention, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// RenderContention writes one contention record as an aligned top-K
// table (the BENCH_concurrent.json column set).
func RenderContention(w io.Writer, rec ContentionRecord, topK int) {
	if topK <= 0 || topK > len(rec.Locks) {
		topK = len(rec.Locks)
	}
	fmt.Fprintf(w, "lock contention [%s]: top %d of %d locks by wait time\n", rec.Run, topK, len(rec.Locks))
	fmt.Fprintf(w, "  %-14s %9s %9s %10s %7s %10s %11s\n",
		"lock", "acquires", "contended", "wait", "share", "hold", "max wait")
	for _, l := range rec.Locks[:topK] {
		fmt.Fprintf(w, "  %-14s %9d %9d %9.2fms %6.1f%% %9.2fms %9.0fus\n",
			l.Name, l.Acquires, l.Contended, l.WaitMs, 100*l.WaitShare, l.HoldMs, l.MaxWaitUs)
	}
}
