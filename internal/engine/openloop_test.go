package engine

import (
	"context"
	"sort"
	"testing"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/sim"
)

// TestOpenLoopArrivals: open-loop pacing changes when operations are
// submitted, never what the workload demands. One session submitting at
// a Poisson arrival rate still executes the canonical stream in order,
// so its counters stay byte-identical to sim.Run; with several sessions
// only the interleaving may shift — reruns of the same (scenario, seed)
// must offer the exact same operations (the replay property, end to end
// through the engine).
func TestOpenLoopArrivals(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	cfg := scenarioConfig("storm-adversarial", costmodel.CacheInvalidate, costmodel.Model2, 913, 16, 28)

	seq := sim.Run(cfg)
	one := New(cfg, Options{Clients: 1, ArrivalRatePerSec: 20000}).Run(context.Background())
	if one.Counters != seq.Counters || one.SimTotalMs != seq.TotalMs {
		t.Fatalf("1-client open-loop diverges from sim.Run:\nengine: %+v / %v\nsim:    %+v / %v",
			one.Counters, one.SimTotalMs, seq.Counters, seq.TotalMs)
	}

	lift := func(res Result) []int {
		idx := make([]int, 0, len(res.History))
		for _, he := range res.History {
			idx = append(idx, he.Op.Index)
		}
		sort.Ints(idx)
		return idx
	}
	opts := Options{Clients: 4, ArrivalRatePerSec: 5000, RecordHistory: true}
	a := lift(New(cfg, opts).Run(context.Background()))
	b := lift(New(cfg, opts).Run(context.Background()))
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("open-loop reruns executed %d vs %d ops", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("open-loop reruns offered different workloads at position %d: op #%d vs #%d", i, a[i], b[i])
		}
	}
}
