package engine

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
	"dbproc/internal/workload"
)

// Options configure one concurrent run.
type Options struct {
	// Clients is the number of closed-loop sessions; values below 1 mean
	// one session. With one session the engine executes the world's
	// workload in its original sequential order, so measured counters and
	// results are byte-identical to sim.Run on the same Config.
	Clients int
	// ThinkMeanMs is the mean of each session's exponentially distributed
	// wall-clock think time between operations; zero disables thinking.
	ThinkMeanMs float64
	// ArrivalRatePerSec switches sessions from the closed loop to an
	// open-loop Poisson arrival process: each session submits its i-th
	// operation at a pre-drawn absolute instant (workload.Arrivals),
	// regardless of when the previous one completed, so a congested
	// engine accumulates queueing delay instead of throttling offered
	// load. Positive values disable ThinkMeanMs pacing; the schedule is a
	// pure function of (Config.Seed, session, rate), so reruns over the
	// same scenario and seed replay identical arrival instants. Scenario
	// slow-consumer scaling divides the session's rate the way it
	// multiplies closed-loop think time.
	ArrivalRatePerSec float64
	// RecordHistory retains a HistoryEntry per operation (the
	// serializability oracle's input). Off, the engine keeps only
	// aggregate statistics.
	RecordHistory bool
	// Tracer, when non-nil, records one obs span per operation, named
	// session.query / session.update and tagged with the session id and
	// commit sequence. Sessions meter work on private meters, so spans
	// are adopted fully formed at commit time under the commit mutex: the
	// trace lists operations in commit order, each placed at the run's
	// cumulative committed cost. When a Recorder is also installed, each
	// span additionally carries a wall_wait_ns attribute (lock wait, a
	// wall-clock quantity absent from pure simulation traces).
	Tracer *obs.Tracer
	// Recorder, when non-nil, streams flight events: op begin/commit,
	// per-lock waits, lock release, and — via the observers the engine
	// installs on the cache store — validity transitions. Nil keeps the
	// hot path at one pointer check per site.
	Recorder *telemetry.Recorder
	// ProfileLocks enables the lock table's wall-clock contention
	// profiler; Result.Contention then reports per-lock wait/hold stats.
	ProfileLocks bool
	// Sketches enables O(1)-memory P² latency sketches per session and
	// run-wide, in both domains: wall-clock nanoseconds (lock wait +
	// latched service) and simulated milliseconds (the op's metered
	// cost). Summaries land in Result and SessionStats.
	Sketches bool
	// CritPath enables per-operation critical-path decomposition
	// (docs/DIAGNOSIS.md): every committed op's wall time is split
	// exactly — the four segments sum bit-exactly to the op's recorded
	// wall time — into lock-wait, I/O, cache-miss recompute, and compute,
	// and each lock wait carries a blame edge naming the session/op that
	// held the lock. Results land in Result.CritPaths/TopBlockers, on
	// /metrics (dbproc_critpath_seconds_total, dbproc_blame_*), in flight
	// EvLockAcquire details, and as blame attributes on operation spans.
	// Implies ProfileLocks.
	CritPath bool
	// DisableMVCC turns snapshot reads off, restoring the pure-2PL read
	// path: queries then acquire shared relation locks and entry locks
	// exactly as before the MVCC refactor. On by default (zero value),
	// MVCC gives every query a lock-free consistent snapshot — access
	// footprints shrink to nothing and only updates serialize on the lock
	// table (docs/MVCC.md). The flag exists for the before/after contention
	// benchmark and the tier-4 cost-identity guard.
	DisableMVCC bool
	// Detect, when non-nil, arms the always-on regression detectors
	// (p99 wall latency, lock-contention share, ledger wasted-work
	// ratio); a firing detector records an EvDetector flight event, which
	// triggers the recorder's auto-dump. Requires Recorder to be useful;
	// the latency detector additionally needs Sketches.
	Detect *telemetry.Thresholds
}

// HistoryEntry is one committed operation in the run's history. Seq is
// the global commit order, drawn from the engine's commit-sequence
// counter while the operation's locks are still held; entries in the
// History slice appear in Seq order.
type HistoryEntry struct {
	Session int
	Seq     int
	Op      workload.Op
	// Update carries the transaction's recorded draws (update ops).
	Update sim.UpdateRecord
	// Result is the canonical digest of the query result (query ops).
	Result []byte
	// Tuples counts the query's result tuples.
	Tuples int
	// CostMs is the operation's simulated cost: the session meter's delta
	// across the operation body, priced at the run's cost parameters.
	CostMs float64
	// Snap is the MVCC stamp the op ran at: the snapshot a query read at,
	// or the commit stamp an update published. Zero when MVCC is off.
	Snap uint64
}

// SessionStats aggregates one session's activity.
type SessionStats struct {
	Session int
	Ops     int
	Queries int
	Updates int
	// Tuples counts result tuples delivered to this session's queries.
	Tuples int
	// Counters is the simulated cost charged to this session's private
	// meter; per-session counters sum exactly to the run aggregate.
	Counters metric.Counters
	// WaitNs, ServiceNs and ThinkNs decompose the session's wall clock:
	// waiting for locks, executing the operation body, and thinking
	// between operations.
	WaitNs    int64
	ServiceNs int64
	ThinkNs   int64
	// WallLatency and SimLatency summarize this session's per-op latency
	// sketches (wall-clock ns, simulated ms); zero unless
	// Options.Sketches.
	WallLatency telemetry.SketchSummary
	SimLatency  telemetry.SketchSummary
}

// Result reports one concurrent run.
type Result struct {
	Clients        int
	Ops            int
	Queries        int
	Updates        int
	TuplesReturned int
	// WallSec is the elapsed wall-clock of the whole run; Throughput is
	// Ops divided by it.
	WallSec    float64
	Throughput float64
	// SimTotalMs is the simulated cost of the whole workload (the same
	// quantity sim.Result.TotalMs reports).
	SimTotalMs float64
	Counters   metric.Counters
	Sessions   []SessionStats
	// LatencyNs holds every operation's wall-clock latency (lock wait +
	// latched service), unordered. Use Percentile.
	LatencyNs []int64
	// History is the committed operation history in commit order; empty
	// unless Options.RecordHistory.
	History []HistoryEntry
	// Contention is the lock table's wall-clock contention profile,
	// sorted by total wait time; empty unless Options.ProfileLocks.
	Contention []LockContention
	// WallLatency and SimLatency summarize the run-wide per-op latency
	// sketches; zero unless Options.Sketches.
	WallLatency telemetry.SketchSummary
	SimLatency  telemetry.SketchSummary
	// CritPaths is every committed op's wall-time decomposition in commit
	// order; empty unless Options.CritPath.
	CritPaths []OpCritPath
	// TopBlockers aggregates blame edges by (lock, holder), sorted by
	// total wait descending; empty unless Options.CritPath.
	TopBlockers []BlockerStat
}

// BlameEdge names the holder a lock wait is attributed to.
type BlameEdge struct {
	Lock          string
	WaitNs        int64
	HolderSession int
	HolderOp      string
}

// OpCritPath is one committed operation's critical-path decomposition.
// WaitNs + IONs + RecomputeNs + ComputeNs == WallNs exactly: ComputeNs
// is defined as the remainder, and the measured segments are durations
// of disjoint sub-intervals of the op's wall interval, so the remainder
// is never negative (the property test asserts both).
type OpCritPath struct {
	Session int
	Seq     int
	Op      string
	WallNs  int64
	// WaitNs is the lock-acquisition wait (the 2PL queue).
	WaitNs int64
	// IONs is wall time inside simulated-disk reads and writes.
	IONs int64
	// RecomputeNs is wall time inside cache-miss recompute scopes,
	// excluding the I/O accrued within them.
	RecomputeNs int64
	// ComputeNs is the remainder: plan evaluation, cache reads, commit
	// bookkeeping.
	ComputeNs int64
	// Blame carries one edge per waited-for lock.
	Blame []BlameEdge
}

// BlockerStat aggregates the blame edges pointing at one (lock, holder)
// pair: how often and how long that holder made others wait on the lock.
type BlockerStat struct {
	Lock          string
	HolderSession int
	HolderOp      string
	Waits         int
	WaitNs        int64
}

type blockerKey struct {
	lock    string
	session int
	op      string
}

// Percentile returns the p-th (0..100) latency percentile in
// nanoseconds, 0 if no operations ran.
func (r *Result) Percentile(p float64) int64 {
	if len(r.LatencyNs) == 0 {
		return 0
	}
	s := append([]int64(nil), r.LatencyNs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p / 100 * float64(len(s)-1))
	return s[i]
}

// Digest canonicalizes a query result for equality comparison: the
// multiset of tuple byte-images, independent of delivery order, hashed.
func Digest(tuples [][]byte) []byte {
	imgs := make([][]byte, len(tuples))
	copy(imgs, tuples)
	sort.Slice(imgs, func(i, j int) bool { return bytes.Compare(imgs[i], imgs[j]) < 0 })
	h := sha256.New()
	var n [8]byte
	for _, t := range imgs {
		l := len(t)
		for i := 0; i < 8; i++ {
			n[i] = byte(l >> (8 * i))
		}
		h.Write(n[:])
		h.Write(t)
	}
	return h.Sum(nil)
}

// Engine drives N sessions against one world.
type Engine struct {
	w     *sim.World
	opt   Options
	locks *LockTable
	costs metric.Costs

	// commitMu orders commits: the sequence counter, the history append,
	// the aggregate merge and span adoption form one atomic commit step,
	// taken while the operation's 2PL footprint is still held. Nothing
	// else runs under it — operation bodies execute in parallel against
	// the striped substrate (disk page latches, subsystem mutexes), with
	// the lock table providing logical isolation.
	commitMu sync.Mutex
	seq      int
	hist     []HistoryEntry

	// agg accumulates every committed operation's per-component cost
	// delta. Its counters are atomics: a telemetry scrape reads them
	// mid-run without stalling any session, and each counter is
	// monotone across scrapes.
	agg metric.Aggregate

	// Live counters for the /metrics scrape (atomics: read off-thread).
	inflight  atomic.Int64
	committed atomic.Int64

	// Scenario-phase labelling: phaseNames mirrors the workload
	// schedule's phase list and phaseOps counts commits per phase. Both
	// stay nil on polite (scenario-less) workloads, so spans and metrics
	// are unchanged there.
	phaseNames []string
	phaseOps   []atomic.Int64

	// Run-wide latency sketches; nil unless Options.Sketches.
	wallSk *telemetry.Sketch
	simSk  *telemetry.Sketch

	// Critical-path state (Options.CritPath): per-op decompositions and
	// the blame aggregation behind critMu; per-segment wall totals as
	// atomics so a live scrape reads them without the mutex.
	critMu   sync.Mutex
	crits    []OpCritPath
	blockers map[blockerKey]*BlockerStat

	segWait      atomic.Int64
	segIO        atomic.Int64
	segRecompute atomic.Int64
	segCompute   atomic.Int64

	// Wall totals for the contention-share detector (always accumulated;
	// two atomic adds per op).
	waitNsTot atomic.Int64
	wallNsTot atomic.Int64

	// Per-op-kind wall decomposition: lock wait and wall time accumulated
	// separately for accesses (queries) and updates. The access wait share
	// is the quantity the MVCC refactor collapses (BENCH_concurrent.json's
	// access_wait_share column).
	accWaitNs atomic.Int64
	accWallNs atomic.Int64
	updWaitNs atomic.Int64
	updWallNs atomic.Int64

	det *telemetry.Detectors

	// sessions holds the opened sessions, indexed by id (one slot per
	// configured client). Run opens them itself; a server front-end opens
	// them via OpenSession and drives each with Session.Exec.
	sessMu   sync.Mutex
	sessions []*Session
}

// New builds the world for cfg and an engine over it. The Config's
// Tracer must be nil — strategy-internal spans are single-session
// machinery; use Options.Tracer for per-session operation spans.
func New(cfg sim.Config, opt Options) *Engine {
	if cfg.Tracer != nil {
		panic("engine: Config.Tracer must be nil in concurrent mode (use Options.Tracer)")
	}
	if opt.Clients < 1 {
		opt.Clients = 1
	}
	if opt.CritPath {
		opt.ProfileLocks = true
	}
	w := sim.Build(cfg)
	if !opt.DisableMVCC {
		// Build is done: every file's directory is registered, so enabling
		// MVCC publishes them all at stamp 0 — the snapshot every reader
		// sees until the first update publishes.
		w.Disk().EnableMVCC()
	}
	e := &Engine{w: w, opt: opt, locks: NewLockTable(), costs: w.Meter().Costs()}
	e.sessions = make([]*Session, opt.Clients)
	if opt.ProfileLocks {
		e.locks.EnableProfiling()
	}
	if opt.CritPath {
		e.blockers = make(map[blockerKey]*BlockerStat)
	}
	if opt.Detect != nil {
		e.det = telemetry.NewDetectors(*opt.Detect, opt.Recorder)
	}
	if opt.Sketches {
		e.wallSk = telemetry.NewSketch()
		e.simSk = telemetry.NewSketch()
	}
	if sched := w.Schedule(); sched != nil && sched.Scenario != "" {
		for _, p := range sched.Phases {
			e.phaseNames = append(e.phaseNames, p.Name)
		}
		e.phaseOps = make([]atomic.Int64, len(e.phaseNames))
	}
	if rec := opt.Recorder; rec != nil {
		if store := w.CacheStore(); store != nil {
			store.SetObserver(func(event string, id, session int) {
				// The session tag rides on the pager the transition was
				// charged to, so attribution survives parallel execution.
				rec.Op(event, session, -1, fmt.Sprintf("proc:%d", id), 0, 0)
			})
		}
	}
	return e
}

// World exposes the engine's world (for post-run verification).
func (e *Engine) World() *sim.World { return e.w }

// MVCCEnabled reports whether the engine runs snapshot reads.
func (e *Engine) MVCCEnabled() bool { return !e.opt.DisableMVCC }

// GCLock is the lock-table resource serializing version-chain garbage
// collection. Waits on it are MVCC bookkeeping, not update-footprint
// contention — procdoctor classifies the two separately.
const GCLock = "mvcc:gc"

// WaitProfile is the per-op-kind wall decomposition: how much of the
// accesses' (queries') and updates' wall time went to lock waits.
type WaitProfile struct {
	AccessWaitNs int64
	AccessWallNs int64
	UpdateWaitNs int64
	UpdateWallNs int64
}

// AccessWaitShare is the fraction of access wall time spent waiting on
// locks (0 when no accesses ran).
func (w WaitProfile) AccessWaitShare() float64 {
	if w.AccessWallNs == 0 {
		return 0
	}
	return float64(w.AccessWaitNs) / float64(w.AccessWallNs)
}

// WaitProfile snapshots the per-op-kind wait/wall aggregates. Safe to
// call while a run is live.
func (e *Engine) WaitProfile() WaitProfile {
	return WaitProfile{
		AccessWaitNs: e.accWaitNs.Load(),
		AccessWallNs: e.accWallNs.Load(),
		UpdateWaitNs: e.updWaitNs.Load(),
		UpdateWallNs: e.updWallNs.Load(),
	}
}

// phaseName resolves an op's phase index to its schedule name; empty on
// polite workloads or out-of-range indices.
func (e *Engine) phaseName(idx int) string {
	if idx < 0 || idx >= len(e.phaseNames) {
		return ""
	}
	return e.phaseNames[idx]
}

// countPhase bumps the committed counter for an op's phase (no-op on
// polite workloads).
func (e *Engine) countPhase(idx int) {
	if idx >= 0 && idx < len(e.phaseOps) {
		e.phaseOps[idx].Add(1)
	}
}

// footprint computes the conservative lock set of one operation.
//
// Queries lock the procedure's source relations shared plus its cache
// entry — exclusive for strategies whose access may refresh the entry
// (Cache and Invalidate, Adaptive), shared for Update Cache reads, and
// no entry at all for Always Recompute.
//
// Updates lock r1 and r2 exclusive (the target relation is drawn at
// execution time), r3 shared (model-2 maintenance plans probe it), and —
// for every strategy with cached state — every cache entry exclusive:
// invalidation and maintenance fan out to a conflict set that is only
// known once the i-lock table is consulted, and RVM token propagation
// may touch any shared α/β-memory. docs/CONCURRENCY.md discusses the
// cost of this conservatism.
func (e *Engine) footprint(op workload.Op) Footprint {
	cfg := e.w.Config()
	var f Footprint
	switch op.Kind {
	case workload.Update:
		f.Exclusive(RelLock("r1"), RelLock("r2"))
		f.Shared(RelLock("r3"))
		if cfg.Adaptive || cfg.Strategy != costmodel.AlwaysRecompute {
			for _, id := range e.w.ProcIDs() {
				f.Exclusive(EntryLock(id))
			}
		}
	case workload.Query:
		// With MVCC on, a query needs no locks at all: it reads base
		// relations and maintained entry files through its snapshot, and
		// the rewrite-at-query-time strategies (C&I, Adaptive) serialize on
		// their own per-entry mutexes (docs/MVCC.md). The footprint below
		// is the pure-2PL read path, kept for Options.DisableMVCC.
		if !e.opt.DisableMVCC {
			return f
		}
		// A nested query accesses further procedures inside its body;
		// the 2PL footprint must cover every one up front. InnerProcs
		// derives them from the op alone, and normalize dedupes the
		// repeated relation/entry names.
		procs := append([]int{op.ProcID}, workload.InnerProcs(op, e.w.ProcIDs())...)
		for _, id := range procs {
			for _, rel := range e.w.ProcRelations(id) {
				f.Shared(RelLock(rel))
			}
			switch {
			case cfg.Adaptive || cfg.Strategy == costmodel.CacheInvalidate:
				f.Exclusive(EntryLock(id))
			case cfg.Strategy == costmodel.UpdateCacheAVM || cfg.Strategy == costmodel.UpdateCacheRVM:
				f.Shared(EntryLock(id))
			}
		}
	}
	return f
}

// OpFootprint exposes the 2PL lock footprint Run would acquire for op,
// for conflict analysis by benchmark harnesses and scaling projections.
func (e *Engine) OpFootprint(op workload.Op) Footprint { return e.footprint(op) }

// Run executes the world's workload across Options.Clients sessions: the
// canonical operation stream is dealt round-robin to the sessions, each
// session submits its operations in order — closed loop with think times
// by default, or open loop at pre-drawn Poisson arrival instants when
// Options.ArrivalRatePerSec is set — and every operation executes
// atomically under its lock footprint. The run ends when every session
// drains or ctx is cancelled.
func (e *Engine) Run(ctx context.Context) Result {
	ops := e.w.WorkloadOps()
	n := e.opt.Clients
	perSession := Deal(ops, n)
	if e.opt.RecordHistory {
		e.hist = make([]HistoryEntry, 0, len(ops))
	}

	var wg sync.WaitGroup
	start := time.Now()
	sched := e.w.Schedule()
	for s := 0; s < n; s++ {
		sess := e.OpenSession(s)
		// Scenario schedules can mark sessions as slow consumers; their
		// mean think time is scaled up, stretching the closed-loop tail.
		think := workload.NewThinker(e.w.Config().Seed+7001+int64(s),
			e.opt.ThinkMeanMs*sched.ThinkScale(s))
		// Open loop: pre-drawn Poisson arrival instants replace the
		// completion-paced think loop. Slow consumers arrive at a
		// proportionally lower rate.
		var arrive *workload.Arrivals
		if e.opt.ArrivalRatePerSec > 0 {
			arrive = workload.NewArrivals(e.w.Config().Seed+8001+int64(s),
				e.opt.ArrivalRatePerSec/sched.ThinkScale(s))
		}
		wg.Add(1)
		go func(sess *Session, myOps []workload.Op) {
			defer wg.Done()
			defer sess.Close()
			for _, op := range myOps {
				if arrive != nil {
					if d := time.Until(start.Add(arrive.Next())); d > 0 {
						sess.Think(d)
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
				if ctx.Err() != nil {
					return
				}
				sess.Exec(op)
				if arrive == nil {
					if d := think.Next(); d > 0 {
						sess.Think(d)
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
				}
			}
		}(sess, perSession[s])
	}
	wg.Wait()
	return e.Finish(time.Since(start).Seconds())
}

// TopBlockers snapshots the blame aggregation, sorted by total wait
// descending then (lock, holder) for determinism; k > 0 caps the list.
// Safe to call while a run is live.
func (e *Engine) TopBlockers(k int) []BlockerStat {
	e.critMu.Lock()
	out := make([]BlockerStat, 0, len(e.blockers))
	for _, b := range e.blockers {
		out = append(out, *b)
	}
	e.critMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitNs != out[j].WaitNs {
			return out[i].WaitNs > out[j].WaitNs
		}
		if out[i].Lock != out[j].Lock {
			return out[i].Lock < out[j].Lock
		}
		if out[i].HolderSession != out[j].HolderSession {
			return out[i].HolderSession < out[j].HolderSession
		}
		return out[i].HolderOp < out[j].HolderOp
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Locks exposes the engine's lock table (for contention snapshots while
// a run is live).
func (e *Engine) Locks() *LockTable { return e.locks }

// TelemetryMetrics implements telemetry.Source: the engine's live
// /metrics samples. Safe to call from a scrape goroutine during Run —
// the counters are atomics, the lock profile is an atomic snapshot, and
// the simulated-cost counters are atomic reads of the commit aggregate,
// so every scrape sees them (mid-operation included) and each counter
// is monotone across scrapes.
func (e *Engine) TelemetryMetrics() []telemetry.Metric {
	ms := []telemetry.Metric{
		telemetry.Gauge("dbproc_sessions", "Configured client sessions.", float64(e.opt.Clients), nil),
		telemetry.Gauge("dbproc_sessions_inflight", "Sessions currently acquiring locks or executing.",
			float64(e.inflight.Load()), nil),
		telemetry.Counter("dbproc_ops_committed_total", "Operations committed.",
			float64(e.committed.Load()), nil),
	}
	for i := range e.phaseOps {
		ms = append(ms, telemetry.Counter("dbproc_phase_ops_committed_total",
			"Operations committed per scenario phase.", float64(e.phaseOps[i].Load()),
			map[string]string{"phase": e.phaseNames[i]}))
	}
	for _, c := range e.locks.Contention() {
		lbl := map[string]string{"lock": c.Name}
		ms = append(ms,
			telemetry.Counter("dbproc_lock_acquires_total", "Lock acquisitions.", float64(c.Acquires), lbl),
			telemetry.Counter("dbproc_lock_contended_total", "Lock acquisitions that waited.", float64(c.Contended), lbl),
			telemetry.Counter("dbproc_lock_wait_seconds_total", "Wall-clock lock wait.", float64(c.WaitNs)/1e9, lbl),
			telemetry.Counter("dbproc_lock_hold_seconds_total", "Wall-clock lock hold.", float64(c.HoldNs)/1e9, lbl),
		)
	}
	if e.opt.Sketches {
		for _, q := range e.wallSk.Quantiles() {
			lbl := map[string]string{"quantile": fmt.Sprintf("%g", q)}
			ms = append(ms,
				telemetry.Gauge("dbproc_op_latency_wall_ns", "Per-op wall-clock latency (P² estimate).",
					e.wallSk.Quantile(q), lbl),
				telemetry.Gauge("dbproc_op_latency_sim_ms", "Per-op simulated cost (P² estimate).",
					e.simSk.Quantile(q), lbl),
			)
		}
	}
	if e.opt.CritPath {
		for _, seg := range []struct {
			name string
			ns   int64
		}{
			{"lock_wait", e.segWait.Load()},
			{"io", e.segIO.Load()},
			{"recompute", e.segRecompute.Load()},
			{"compute", e.segCompute.Load()},
		} {
			ms = append(ms, telemetry.Counter("dbproc_critpath_seconds_total",
				"Wall-clock critical-path time by segment.", float64(seg.ns)/1e9,
				map[string]string{"segment": seg.name}))
		}
		for _, b := range e.TopBlockers(8) {
			lbl := map[string]string{
				"lock":           b.Lock,
				"holder_op":      b.HolderOp,
				"holder_session": strconv.Itoa(b.HolderSession),
			}
			ms = append(ms,
				telemetry.Counter("dbproc_blame_wait_seconds_total",
					"Wall-clock lock wait attributed to the holding session/op.",
					float64(b.WaitNs)/1e9, lbl),
				telemetry.Counter("dbproc_blame_waits_total",
					"Lock waits attributed to the holding session/op.",
					float64(b.Waits), lbl),
			)
		}
	}
	// Simulated-cost counters come straight from the commit aggregate's
	// atomics: no latch to try, no scrape ever skipped.
	c := e.agg.Total()
	for _, s := range []struct {
		event string
		n     int64
	}{
		{"page_read", c.PageReads},
		{"page_write", c.PageWrites},
		{"screen", c.Screens},
		{"delta_op", c.DeltaOps},
		{"invalidation", c.Invalidations},
	} {
		ms = append(ms, telemetry.Counter("dbproc_sim_events_total",
			"Simulated cost events by kind.", float64(s.n),
			map[string]string{"event": s.event}))
	}
	return ms
}
