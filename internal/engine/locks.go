// Package engine is the concurrent multi-session access layer over the
// simulator's strategies: N client sessions submit update transactions and
// procedure accesses against one shared world, and the engine guarantees
// that the result is equivalent to some serial order of the submitted
// operations (the contract docs/CONCURRENCY.md states per strategy, and
// the serializability oracle in this package checks).
//
// Synchronization is layered:
//
//  1. a sharded lock table of named reader/writer locks — one per base
//     relation, one per cache entry — acquired per operation in canonical
//     name order (conservative two-phase locking, deadlock-free by
//     ordering);
//  2. subsystem mutexes inside ilock, cache, avm, rete and vlog that make
//     each shared structure individually safe;
//  3. striped latches in the storage layer — per-page reader/writer
//     latches on the shared disk — plus a private pager and cost meter
//     per session, so operation bodies run physically in parallel; a
//     small commit mutex orders only the commit step itself (sequence
//     draw, history append, aggregate merge).
package engine

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbproc/internal/telemetry"
)

// RelLock names the lock-table resource for a base relation.
func RelLock(rel string) string { return "rel:" + rel }

// EntryLock names the lock-table resource for a cache entry. The id is
// zero-padded so lexicographic acquisition order equals numeric order.
func EntryLock(id int) string { return fmt.Sprintf("ent:%08d", id) }

// Footprint is the set of named resources one operation locks, each in
// shared or exclusive mode. Build it with Shared/Exclusive, then hand it
// to LockTable.Acquire.
type Footprint struct {
	names []string
	excl  []bool
}

// Shared adds resources locked in shared (reader) mode.
func (f *Footprint) Shared(names ...string) {
	for _, n := range names {
		f.names = append(f.names, n)
		f.excl = append(f.excl, false)
	}
}

// Exclusive adds resources locked in exclusive (writer) mode.
func (f *Footprint) Exclusive(names ...string) {
	for _, n := range names {
		f.names = append(f.names, n)
		f.excl = append(f.excl, true)
	}
}

// normalize sorts the footprint into canonical acquisition order and
// dedupes it; a resource named both shared and exclusive is exclusive.
func (f *Footprint) normalize() {
	type req struct {
		name string
		excl bool
	}
	reqs := make([]req, len(f.names))
	for i := range f.names {
		reqs[i] = req{f.names[i], f.excl[i]}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].name < reqs[j].name })
	f.names = f.names[:0]
	f.excl = f.excl[:0]
	for _, r := range reqs {
		if n := len(f.names); n > 0 && f.names[n-1] == r.name {
			f.excl[n-1] = f.excl[n-1] || r.excl
			continue
		}
		f.names = append(f.names, r.name)
		f.excl = append(f.excl, r.excl)
	}
}

// normalized returns a canonical copy, leaving the receiver untouched.
func (f Footprint) normalized() Footprint {
	c := Footprint{
		names: append([]string(nil), f.names...),
		excl:  append([]bool(nil), f.excl...),
	}
	c.normalize()
	return c
}

// Conflicts reports whether two footprints cannot be held simultaneously:
// they name a common resource that at least one side locks exclusively.
func (f Footprint) Conflicts(g Footprint) bool {
	f = f.normalized()
	g = g.normalized()
	i, j := 0, 0
	for i < len(f.names) && j < len(g.names) {
		switch {
		case f.names[i] < g.names[j]:
			i++
		case f.names[i] > g.names[j]:
			j++
		default:
			if f.excl[i] || g.excl[j] {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// lockShards stripes the name→lock map so sessions creating or looking up
// locks for disjoint resources rarely contend on map access.
const lockShards = 16

// LockTable is a table of named reader/writer locks, sharded by name
// hash. Locks are created on first use and live for the table's lifetime
// (the name space — relations plus cache entries — is small and fixed).
//
// With EnableProfiling the table additionally streams per-lock wall-clock
// wait/hold statistics (the contention profiler); disabled, Acquire and
// Release take the exact pre-profiler path — no clock reads, no atomics —
// so the zero-telemetry cost stays at seed level (tier-4 guard).
type LockTable struct {
	seed    maphash.Seed
	shards  [lockShards]lockShard
	profile bool
}

// namedLock is one named RWMutex plus its streaming contention profile.
// The counters are atomics: waiters on other locks update them while the
// mutex itself is held or contended.
type namedLock struct {
	mu   sync.RWMutex
	name string

	acquires  atomic.Int64
	exclusive atomic.Int64
	contended atomic.Int64
	waitNs    atomic.Int64
	holdNs    atomic.Int64
	maxWaitNs atomic.Int64
	maxHoldNs atomic.Int64
	// holder names the session/op that most recently acquired the lock
	// with a blame tag (AcquireAs). Readers store here too: a writer
	// blocked behind a read-held lock blames the latest reader. The tag
	// is never cleared on release — the waiter that sampled it may
	// publish the blame edge after the holder has moved on, which is
	// exactly the "who made me wait" question the edge answers.
	holder atomic.Pointer[holderTag]
}

// holderTag identifies a blame-tagged acquirer.
type holderTag struct {
	session int
	op      string
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

type lockShard struct {
	mu    sync.Mutex
	locks map[string]*namedLock
}

// NewLockTable returns an empty table.
func NewLockTable() *LockTable {
	t := &LockTable{seed: maphash.MakeSeed()}
	for i := range t.shards {
		t.shards[i].locks = make(map[string]*namedLock)
	}
	return t
}

// EnableProfiling turns the contention profiler on. Call before any
// Acquire races it (the engine sets it at construction time): the flag
// is read without synchronization on the hot path.
func (t *LockTable) EnableProfiling() { t.profile = true }

// Profiling reports whether the contention profiler is on.
func (t *LockTable) Profiling() bool { return t.profile }

// lock returns the lock for name, creating it if needed.
func (t *LockTable) lock(name string) *namedLock {
	s := &t.shards[maphash.String(t.seed, name)%lockShards]
	s.mu.Lock()
	l := s.locks[name]
	if l == nil {
		l = &namedLock{name: name}
		s.locks[name] = l
	}
	s.mu.Unlock()
	return l
}

// LockWait reports one lock's wall-clock acquisition wait within a Held
// set (profiling runs only; zero waits are omitted). When the waited-for
// lock's holder carried a blame tag (AcquireAs), HolderSession/HolderOp
// name it: the session/op that held (or, for read-held locks, last
// acquired) the lock when the wait began.
type LockWait struct {
	Name   string
	WaitNs int64
	// HolderSession is -1 and HolderOp "unknown" when no tagged
	// acquisition preceded the wait (possible only on a spurious TryRLock
	// failure); on a real block the holder's tag store happens-before our
	// acquisition, so the edge resolves.
	HolderSession int
	HolderOp      string
}

// Held is a set of acquired locks; Release drops them all. Profiling
// state lives behind one pointer, and inline backs locks for typical
// footprints, so a profiling-off Acquire costs one allocation — the same
// count as the pre-profiler path (tier-4 overhead guard).
type Held struct {
	locks  []*namedLock
	excl   []bool
	prof   *heldProf
	inline [4]*namedLock
}

// lockSlots returns storage for n acquired locks, using the inline array
// when the footprint is small.
func (h *Held) lockSlots(n int) []*namedLock {
	if n <= len(h.inline) {
		return h.inline[:n]
	}
	return make([]*namedLock, n)
}

// heldProf is a Held's profiling state: when each lock was acquired (for
// hold measurement) and the nonzero waits observed during acquisition.
type heldProf struct {
	epoch    time.Time
	acquired []int64 // ns offsets from epoch
	waits    []LockWait
}

// Acquire takes every lock in the footprint — shared or exclusive as
// requested — in canonical name order. Because every caller acquires in
// the same global order, no cycle of waiters can form and the table is
// deadlock-free. The footprint must name the operation's entire read and
// write set up front (conservative two-phase locking).
func (t *LockTable) Acquire(f Footprint) *Held {
	return t.AcquireAs(f, -1, "")
}

// AcquireAs is Acquire with a blame tag: each lock taken records
// (session, op) as its latest holder, and each wait resolves the tag the
// conflicting holder left, yielding the LockWait's blame edge. An empty
// op disables tagging, making AcquireAs byte-for-byte Acquire — the
// profiling-off path is untouched either way (tier-4 blame-off guard).
func (t *LockTable) AcquireAs(f Footprint, session int, op string) *Held {
	f.normalize()
	h := &Held{excl: f.excl}
	h.locks = h.lockSlots(len(f.names))
	if !t.profile {
		for i, name := range f.names {
			l := t.lock(name)
			if f.excl[i] {
				l.mu.Lock()
			} else {
				l.mu.RLock()
			}
			h.locks[i] = l
		}
		return h
	}

	var tag *holderTag
	if op != "" {
		tag = &holderTag{session: session, op: op}
	}
	// Profiling path: TryLock first so uncontended acquisitions cost two
	// clock reads and no blocking; only actual waits are timed.
	p := &heldProf{epoch: time.Now(), acquired: make([]int64, len(f.names))}
	h.prof = p
	for i, name := range f.names {
		l := t.lock(name)
		var wait int64
		var blame *holderTag
		if f.excl[i] {
			if !l.mu.TryLock() {
				// Sample the holder before blocking: blame names who held
				// the lock when the wait began, not whoever released last.
				blame = l.holder.Load()
				t0 := time.Now()
				l.mu.Lock()
				wait = time.Since(t0).Nanoseconds()
			}
			l.exclusive.Add(1)
		} else {
			if !l.mu.TryRLock() {
				blame = l.holder.Load()
				t0 := time.Now()
				l.mu.RLock()
				wait = time.Since(t0).Nanoseconds()
			}
		}
		if wait > 0 && blame == nil {
			// The pre-block sample raced the holder's tag store; re-sample
			// before publishing our own tag — the conflicting acquisition
			// stored its tag before releasing, which happens-before us.
			blame = l.holder.Load()
		}
		if tag != nil {
			l.holder.Store(tag)
		}
		l.acquires.Add(1)
		if wait > 0 {
			l.contended.Add(1)
			l.waitNs.Add(wait)
			atomicMax(&l.maxWaitNs, wait)
			lw := LockWait{Name: name, WaitNs: wait, HolderSession: -1, HolderOp: "unknown"}
			if blame != nil {
				lw.HolderSession, lw.HolderOp = blame.session, blame.op
			}
			p.waits = append(p.waits, lw)
		}
		p.acquired[i] = time.Since(p.epoch).Nanoseconds()
		h.locks[i] = l
	}
	return h
}

// Waits returns the nonzero wall-clock waits incurred acquiring this
// set, in acquisition order (profiling runs only).
func (h *Held) Waits() []LockWait {
	if h.prof == nil {
		return nil
	}
	return h.prof.waits
}

// Release drops the held locks in reverse acquisition order.
func (h *Held) Release() {
	var heldNs []int64
	if p := h.prof; p != nil {
		now := time.Since(p.epoch).Nanoseconds()
		heldNs = make([]int64, len(h.locks))
		for i := range h.locks {
			heldNs[i] = now - p.acquired[i]
		}
	}
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.excl[i] {
			h.locks[i].mu.Unlock()
		} else {
			h.locks[i].mu.RUnlock()
		}
		if heldNs != nil {
			h.locks[i].holdNs.Add(heldNs[i])
			atomicMax(&h.locks[i].maxHoldNs, heldNs[i])
		}
	}
	h.locks = nil
	h.excl = nil
	h.prof = nil
}

// LockContention is one lock's accumulated contention profile.
type LockContention struct {
	Name      string
	Acquires  int64
	Exclusive int64
	Contended int64
	WaitNs    int64
	HoldNs    int64
	MaxWaitNs int64
	MaxHoldNs int64
}

// Contention snapshots every lock's profile, sorted by total wait time
// (descending) then name. Empty when profiling is off or nothing was
// acquired. Safe to call while a run is live — the counters are atomics,
// so a mid-run snapshot is approximate but internally consistent per
// counter.
func (t *LockTable) Contention() []LockContention {
	var out []LockContention
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, l := range s.locks {
			if n := l.acquires.Load(); n > 0 {
				out = append(out, LockContention{
					Name:      l.name,
					Acquires:  n,
					Exclusive: l.exclusive.Load(),
					Contended: l.contended.Load(),
					WaitNs:    l.waitNs.Load(),
					HoldNs:    l.holdNs.Load(),
					MaxWaitNs: l.maxWaitNs.Load(),
					MaxHoldNs: l.maxHoldNs.Load(),
				})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitNs != out[j].WaitNs {
			return out[i].WaitNs > out[j].WaitNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ContentionJSON converts a contention profile to its export form,
// computing each lock's share of the total wait time.
func ContentionJSON(cs []LockContention) []telemetry.LockContentionJSON {
	var totalWait int64
	for _, c := range cs {
		totalWait += c.WaitNs
	}
	out := make([]telemetry.LockContentionJSON, len(cs))
	for i, c := range cs {
		out[i] = telemetry.LockContentionJSON{
			Name:      c.Name,
			Acquires:  c.Acquires,
			Exclusive: c.Exclusive,
			Contended: c.Contended,
			WaitMs:    float64(c.WaitNs) / 1e6,
			HoldMs:    float64(c.HoldNs) / 1e6,
			MaxWaitUs: float64(c.MaxWaitNs) / 1e3,
			MaxHoldUs: float64(c.MaxHoldNs) / 1e3,
		}
		if totalWait > 0 {
			out[i].WaitShare = float64(c.WaitNs) / float64(totalWait)
		}
	}
	return out
}
