// Package engine is the concurrent multi-session access layer over the
// simulator's strategies: N client sessions submit update transactions and
// procedure accesses against one shared world, and the engine guarantees
// that the result is equivalent to some serial order of the submitted
// operations (the contract docs/CONCURRENCY.md states per strategy, and
// the serializability oracle in this package checks).
//
// Synchronization is layered:
//
//  1. a sharded lock table of named reader/writer locks — one per base
//     relation, one per cache entry — acquired per operation in canonical
//     name order (conservative two-phase locking, deadlock-free by
//     ordering);
//  2. subsystem mutexes inside ilock, cache, avm, rete and vlog that make
//     each shared structure individually safe;
//  3. a world latch serializing access to the physical substrate (the one
//     simulated disk arm, its pager, and the cost meter), held for the
//     body of each operation.
package engine

import (
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
)

// RelLock names the lock-table resource for a base relation.
func RelLock(rel string) string { return "rel:" + rel }

// EntryLock names the lock-table resource for a cache entry. The id is
// zero-padded so lexicographic acquisition order equals numeric order.
func EntryLock(id int) string { return fmt.Sprintf("ent:%08d", id) }

// Footprint is the set of named resources one operation locks, each in
// shared or exclusive mode. Build it with Shared/Exclusive, then hand it
// to LockTable.Acquire.
type Footprint struct {
	names []string
	excl  []bool
}

// Shared adds resources locked in shared (reader) mode.
func (f *Footprint) Shared(names ...string) {
	for _, n := range names {
		f.names = append(f.names, n)
		f.excl = append(f.excl, false)
	}
}

// Exclusive adds resources locked in exclusive (writer) mode.
func (f *Footprint) Exclusive(names ...string) {
	for _, n := range names {
		f.names = append(f.names, n)
		f.excl = append(f.excl, true)
	}
}

// normalize sorts the footprint into canonical acquisition order and
// dedupes it; a resource named both shared and exclusive is exclusive.
func (f *Footprint) normalize() {
	type req struct {
		name string
		excl bool
	}
	reqs := make([]req, len(f.names))
	for i := range f.names {
		reqs[i] = req{f.names[i], f.excl[i]}
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].name < reqs[j].name })
	f.names = f.names[:0]
	f.excl = f.excl[:0]
	for _, r := range reqs {
		if n := len(f.names); n > 0 && f.names[n-1] == r.name {
			f.excl[n-1] = f.excl[n-1] || r.excl
			continue
		}
		f.names = append(f.names, r.name)
		f.excl = append(f.excl, r.excl)
	}
}

// lockShards stripes the name→lock map so sessions creating or looking up
// locks for disjoint resources rarely contend on map access.
const lockShards = 16

// LockTable is a table of named reader/writer locks, sharded by name
// hash. Locks are created on first use and live for the table's lifetime
// (the name space — relations plus cache entries — is small and fixed).
type LockTable struct {
	seed   maphash.Seed
	shards [lockShards]lockShard
}

type lockShard struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
}

// NewLockTable returns an empty table.
func NewLockTable() *LockTable {
	t := &LockTable{seed: maphash.MakeSeed()}
	for i := range t.shards {
		t.shards[i].locks = make(map[string]*sync.RWMutex)
	}
	return t
}

// lock returns the lock for name, creating it if needed.
func (t *LockTable) lock(name string) *sync.RWMutex {
	s := &t.shards[maphash.String(t.seed, name)%lockShards]
	s.mu.Lock()
	l := s.locks[name]
	if l == nil {
		l = &sync.RWMutex{}
		s.locks[name] = l
	}
	s.mu.Unlock()
	return l
}

// Held is a set of acquired locks; Release drops them all.
type Held struct {
	locks []*sync.RWMutex
	excl  []bool
}

// Acquire takes every lock in the footprint — shared or exclusive as
// requested — in canonical name order. Because every caller acquires in
// the same global order, no cycle of waiters can form and the table is
// deadlock-free. The footprint must name the operation's entire read and
// write set up front (conservative two-phase locking).
func (t *LockTable) Acquire(f Footprint) *Held {
	f.normalize()
	h := &Held{locks: make([]*sync.RWMutex, len(f.names)), excl: f.excl}
	for i, name := range f.names {
		l := t.lock(name)
		if f.excl[i] {
			l.Lock()
		} else {
			l.RLock()
		}
		h.locks[i] = l
	}
	return h
}

// Release drops the held locks in reverse acquisition order.
func (h *Held) Release() {
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.excl[i] {
			h.locks[i].Unlock()
		} else {
			h.locks[i].RUnlock()
		}
	}
	h.locks = nil
	h.excl = nil
}
