package engine

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
)

// fullTelemetry is the everything-on option set used by these tests.
func fullTelemetry(clients int, rec *telemetry.Recorder) Options {
	return Options{
		Clients:       clients,
		RecordHistory: true,
		Recorder:      rec,
		ProfileLocks:  true,
		Sketches:      true,
	}
}

// TestTelemetryPreservesSequentialIdentity is the safety gate for this
// PR: with every telemetry feature enabled, a 1-client run must still be
// byte-identical to the sequential simulator — observation must not
// perturb the simulated machine.
func TestTelemetryPreservesSequentialIdentity(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	cfg := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 41, 15, 25)
	seq := sim.Run(cfg)
	e := New(cfg, fullTelemetry(1, telemetry.NewRecorder(4096)))
	got := e.Run(context.Background())
	if got.Counters != seq.Counters {
		t.Fatalf("telemetry perturbed counters:\n got %v\nwant %v", got.Counters, seq.Counters)
	}
	if got.SimTotalMs != seq.TotalMs {
		t.Fatalf("telemetry perturbed cost: got %v want %v", got.SimTotalMs, seq.TotalMs)
	}
}

func TestFlightRecorderCapturesRun(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	rec := telemetry.NewRecorder(1 << 14)
	cfg := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 19, 12, 20)
	e := New(cfg, fullTelemetry(4, rec))
	res := e.Run(context.Background())

	var buf bytes.Buffer
	if err := rec.DumpJSONL(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	d, err := telemetry.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	commits := map[int]bool{}
	for _, ev := range d.Events {
		kinds[ev.Kind]++
		if ev.Kind == telemetry.EvOpCommit {
			if ev.Seq < 0 || ev.Session < 0 || ev.Session >= 4 {
				t.Fatalf("commit event missing attribution: %+v", ev)
			}
			commits[ev.Seq] = true
		}
	}
	if kinds[telemetry.EvOpBegin] != res.Ops || kinds[telemetry.EvOpCommit] != res.Ops {
		t.Fatalf("begin/commit counts %d/%d, want %d each (kinds: %v)",
			kinds[telemetry.EvOpBegin], kinds[telemetry.EvOpCommit], res.Ops, kinds)
	}
	for seq := 0; seq < res.Ops; seq++ {
		if !commits[seq] {
			t.Fatalf("no commit event for seq %d", seq)
		}
	}
	// Cache and Invalidate flips validity: the observer feed must appear.
	if kinds["cache.invalidate"] == 0 || kinds["cache.refresh"] == 0 {
		t.Fatalf("no cache observer events (kinds: %v)", kinds)
	}

	// The timeline renders without error and mentions a commit.
	buf.Reset()
	rec.Timeline(&buf)
	if !strings.Contains(buf.String(), telemetry.EvOpCommit) {
		t.Fatalf("timeline missing commits:\n%.400s", buf.String())
	}
}

func TestContentionProfile(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	cfg := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 23, 16, 24)
	e := New(cfg, fullTelemetry(8, nil))
	res := e.Run(context.Background())

	if len(res.Contention) == 0 {
		t.Fatal("profiling run reported no lock activity")
	}
	var totalAcquires, totalWait int64
	seen := map[string]bool{}
	for _, c := range res.Contention {
		if seen[c.Name] {
			t.Fatalf("lock %q appears twice", c.Name)
		}
		seen[c.Name] = true
		if c.Contended > c.Acquires || c.Exclusive > c.Acquires {
			t.Fatalf("inconsistent profile: %+v", c)
		}
		if c.WaitNs > 0 && c.Contended == 0 {
			t.Fatalf("wait without contention: %+v", c)
		}
		if c.MaxWaitNs > 0 && c.WaitNs < c.MaxWaitNs {
			t.Fatalf("max wait exceeds total: %+v", c)
		}
		totalAcquires += c.Acquires
		totalWait += c.WaitNs
	}
	if !seen[RelLock("r1")] {
		t.Fatalf("r1 lock missing from profile: %v", res.Contention)
	}
	// Sorted by wait descending.
	for i := 1; i < len(res.Contention); i++ {
		if res.Contention[i].WaitNs > res.Contention[i-1].WaitNs {
			t.Fatal("contention not sorted by wait")
		}
	}
	// Export form: shares sum to 1 when any wait occurred.
	rows := ContentionJSON(res.Contention)
	var share float64
	for _, r := range rows {
		share += r.WaitShare
	}
	if totalWait > 0 && (share < 0.999 || share > 1.001) {
		t.Fatalf("wait shares sum to %v", share)
	}
	if totalWait == 0 && share != 0 {
		t.Fatalf("no wait but share %v", share)
	}

	// Latency sketches cover every op in both domains.
	if res.WallLatency.Count != int64(res.Ops) || res.SimLatency.Count != int64(res.Ops) {
		t.Fatalf("sketch counts %d/%d, want %d", res.WallLatency.Count, res.SimLatency.Count, res.Ops)
	}
	if res.SimLatency.Max <= 0 || res.WallLatency.P50 <= 0 {
		t.Fatalf("degenerate sketches: wall=%+v sim=%+v", res.WallLatency, res.SimLatency)
	}
	var sessOps int64
	for _, st := range res.Sessions {
		sessOps += st.WallLatency.Count
		if st.WallLatency.Count != int64(st.Ops) {
			t.Fatalf("session %d sketch count %d, ops %d", st.Session, st.WallLatency.Count, st.Ops)
		}
	}
	if sessOps != int64(res.Ops) {
		t.Fatalf("session sketch counts sum to %d, want %d", sessOps, res.Ops)
	}
}

func TestTelemetryMetricsSource(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	cfg := testConfig(costmodel.UpdateCacheAVM, costmodel.Model1, 29, 10, 16)
	e := New(cfg, fullTelemetry(4, nil))
	res := e.Run(context.Background())

	ms := e.TelemetryMetrics()
	byName := map[string][]telemetry.Metric{}
	for _, m := range ms {
		byName[m.Name] = append(byName[m.Name], m)
	}
	if got := byName["dbproc_ops_committed_total"][0].Value; got != float64(res.Ops) {
		t.Fatalf("committed = %v, want %d", got, res.Ops)
	}
	if got := byName["dbproc_sessions_inflight"][0].Value; got != 0 {
		t.Fatalf("inflight after run = %v", got)
	}
	// Per-lock samples must agree with the contention profile.
	waits := map[string]float64{}
	for _, m := range byName["dbproc_lock_wait_seconds_total"] {
		waits[m.Labels["lock"]] = m.Value
	}
	for _, c := range res.Contention {
		if got := waits[c.Name]; got != float64(c.WaitNs)/1e9 {
			t.Fatalf("lock %s wait %v, profile %v", c.Name, got, float64(c.WaitNs)/1e9)
		}
	}
	// Sketch quantile gauges exist for both domains.
	if len(byName["dbproc_op_latency_wall_ns"]) != 4 || len(byName["dbproc_op_latency_sim_ms"]) != 4 {
		t.Fatalf("quantile gauges: %d wall, %d sim",
			len(byName["dbproc_op_latency_wall_ns"]), len(byName["dbproc_op_latency_sim_ms"]))
	}
	// Simulated counters (latch is free post-run) match the result.
	evs := map[string]float64{}
	for _, m := range byName["dbproc_sim_events_total"] {
		evs[m.Labels["event"]] = m.Value
	}
	if evs["page_read"] != float64(res.Counters.PageReads) || evs["screen"] != float64(res.Counters.Screens) {
		t.Fatalf("sim events %v vs counters %v", evs, res.Counters)
	}

	// And the whole set renders as Prometheus text.
	var buf bytes.Buffer
	telemetry.WriteMetrics(&buf, ms)
	if !strings.Contains(buf.String(), "dbproc_ops_committed_total") {
		t.Fatalf("render:\n%.300s", buf.String())
	}
}

// TestMidRunScrapeMonotone scrapes TelemetryMetrics continuously while a
// multi-session run is live. The scrape must never block on a session
// (the commit aggregate is atomics, not a latch), every scrape must
// succeed — there is no "try" path that skips a busy sample — and each
// counter must be monotone from one scrape to the next. The final scrape
// must agree exactly with the run result.
func TestMidRunScrapeMonotone(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	cfg := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 37, 14, 22)
	e := New(cfg, Options{Clients: 4, ThinkMeanMs: 0.2, ProfileLocks: true})

	monotone := []string{
		"dbproc_sim_events_total",
		"dbproc_ops_committed_total",
		"dbproc_lock_acquires_total",
		"dbproc_lock_contended_total",
		"dbproc_lock_wait_seconds_total",
	}
	isMonotone := map[string]bool{}
	for _, n := range monotone {
		isMonotone[n] = true
	}
	key := func(m telemetry.Metric) string {
		return m.Name + "|" + m.Labels["event"] + "|" + m.Labels["lock"]
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	var scrapes int
	go func() {
		defer close(done)
		prev := map[string]float64{}
		for {
			for _, m := range e.TelemetryMetrics() {
				if !isMonotone[m.Name] {
					continue
				}
				k := key(m)
				if m.Value < prev[k] {
					t.Errorf("scrape %d: %s went backwards: %v -> %v", scrapes, k, prev[k], m.Value)
					return
				}
				prev[k] = m.Value
			}
			scrapes++
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	res := e.Run(context.Background())
	close(stop)
	<-done
	if scrapes < 10 {
		t.Fatalf("only %d scrapes completed alongside the run", scrapes)
	}

	// The post-run scrape equals the result exactly: nothing was lost to a
	// skipped sample.
	evs := map[string]float64{}
	var committed float64
	for _, m := range e.TelemetryMetrics() {
		switch m.Name {
		case "dbproc_sim_events_total":
			evs[m.Labels["event"]] = m.Value
		case "dbproc_ops_committed_total":
			committed = m.Value
		}
	}
	if committed != float64(res.Ops) {
		t.Fatalf("committed = %v, want %d", committed, res.Ops)
	}
	c := res.Counters
	want := map[string]float64{
		"page_read":    float64(c.PageReads),
		"page_write":   float64(c.PageWrites),
		"screen":       float64(c.Screens),
		"delta_op":     float64(c.DeltaOps),
		"invalidation": float64(c.Invalidations),
	}
	for ev, w := range want {
		if evs[ev] != w {
			t.Fatalf("final scrape %s = %v, want %v (all: %v)", ev, evs[ev], w, evs)
		}
	}
}

// TestViolationTriggersFlightDump wires the oracle to the recorder the
// way verify.sh's soak does: a non-serializable verdict must auto-dump a
// flight file whose violation event procstat can align (Seqs present in
// the dumped timeline).
func TestViolationTriggersFlightDump(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	rec := telemetry.NewRecorder(1 << 12)
	var dump bytes.Buffer
	rec.SetAutoDumpWriter(&dump)

	cfg := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 7, 6, 10)
	e := New(cfg, fullTelemetry(2, rec))
	res := e.Run(context.Background())

	for i := range res.History {
		if res.History[i].Result != nil {
			res.History[i].Result = append([]byte(nil), res.History[i].Result...)
			res.History[i].Result[0] ^= 0xFF
			break
		}
	}
	rep := CheckSerializable(cfg, res.History, 0)
	if rep.Serializable {
		t.Fatal("oracle accepted a corrupted history")
	}
	if len(rep.BlockedSeqs) == 0 {
		t.Fatal("report carries no blocked seqs")
	}
	RecordViolation(rec, rep)
	if dump.Len() == 0 {
		t.Fatal("violation did not auto-dump")
	}
	d, err := telemetry.ReadDump(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	vs := d.Violations()
	if len(vs) != 1 || vs[0].Detail == "" {
		t.Fatalf("violations in dump: %+v", vs)
	}
	if len(vs[0].Seqs) != len(rep.BlockedSeqs) {
		t.Fatalf("dumped seqs %v, report %v", vs[0].Seqs, rep.BlockedSeqs)
	}
	// The blocked seqs must reference ops whose commit events are in the
	// same dump — the alignment procstat renders.
	blocked := map[int]bool{}
	for _, s := range vs[0].Seqs {
		blocked[s] = true
	}
	matched := 0
	for _, ev := range d.Events {
		if ev.Kind == telemetry.EvOpCommit && blocked[ev.Seq] {
			matched++
		}
	}
	if matched != len(blocked) {
		t.Fatalf("only %d of %d blocked seqs have commit events in the dump", matched, len(blocked))
	}
	// RecordViolation is a no-op on serializable reports and nil recorders.
	dump.Reset()
	RecordViolation(rec, SerializabilityReport{Serializable: true})
	RecordViolation(nil, rep)
	if dump.Len() != 0 {
		t.Fatal("no-op cases dumped")
	}
}
