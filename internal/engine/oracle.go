package engine

import (
	"bytes"
	"fmt"
	"strings"

	"dbproc/internal/costmodel"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
	"dbproc/internal/workload"
)

// SerializabilityReport is the outcome of checking one run's history
// against the brute-force recomputer.
type SerializabilityReport struct {
	// Serializable is true when some serial order consistent with every
	// session's program order reproduces every observed query result.
	Serializable bool
	// Exhausted is true when the search hit its state budget before
	// deciding; Serializable is then false but the history was not proven
	// non-serializable.
	Exhausted bool
	// StatesExplored counts search states visited.
	StatesExplored int
	// Order is a witnessing serial order as indices into the history
	// slice (only when Serializable).
	Order []int
	// Window describes the minimal non-serializable window on failure:
	// the deepest serial prefix the search extended and the first
	// operation of each session that no extension could accommodate.
	Window string
	// BlockedSeqs holds the commit sequence of each operation blocked at
	// the deepest frontier — the machine-readable form of Window, which
	// procstat aligns against a flight-recorder timeline.
	BlockedSeqs []int
}

// RecordViolation records a failed serializability report as a flight
// event (kind oracle.violation), carrying the window description and the
// blocked frontier's commit sequences; recording it triggers the
// recorder's automatic dump. No-op for serializable reports or a nil
// recorder.
func RecordViolation(rec *telemetry.Recorder, rep SerializabilityReport) {
	if rec == nil || rep.Serializable {
		return
	}
	rec.Record(telemetry.Event{
		Kind:    telemetry.EvViolation,
		Session: -1,
		Seq:     -1,
		Detail:  rep.Window,
		Seqs:    append([]int(nil), rep.BlockedSeqs...),
	})
}

// CheckSerializable replays the history of a concurrent run against a
// fresh brute-force recomputer (an Always Recompute world built from the
// same Config, the oracle of internal/sim's differential test) and
// searches for a serial order, consistent with per-session program
// order, under which every recorded query digest matches a fresh
// recompute on the bases as of that point.
//
// The search is bounded depth-first over session-progress vectors:
// update operations are applied via ReplayUpdate and undone on
// backtrack with the inverse record; visited (progress, base-state)
// pairs are memoized, which is sound because the oracle strategy holds
// no cached state — a query's answer depends only on the base tables.
// budget caps the states explored (<= 0 means a default of 200000).
func CheckSerializable(cfg sim.Config, hist []HistoryEntry, budget int) SerializabilityReport {
	if budget <= 0 {
		budget = 200000
	}
	oracleCfg := cfg
	oracleCfg.Strategy = costmodel.AlwaysRecompute
	oracleCfg.Adaptive = false
	oracleCfg.Tracer = nil

	c := &checker{
		w:       sim.Build(oracleCfg),
		budget:  budget,
		visited: make(map[string]struct{}),
	}
	// Deal history into per-session program-order streams. History is in
	// commit order, which respects each session's program order.
	for _, he := range hist {
		for len(c.sessions) <= he.Session {
			c.sessions = append(c.sessions, nil)
		}
		c.sessions[he.Session] = append(c.sessions[he.Session], he)
	}

	progress := make([]int, len(c.sessions))
	ok := c.dfs(progress, 0, len(hist))
	rep := SerializabilityReport{
		Serializable:   ok,
		Exhausted:      c.exhausted,
		StatesExplored: c.states,
	}
	if ok {
		rep.Order = append([]int(nil), c.order...)
		return rep
	}
	rep.Window = c.window()
	rep.BlockedSeqs = append([]int(nil), c.bestBlockedSeqs...)
	return rep
}

type checker struct {
	w        *sim.World
	sessions [][]HistoryEntry
	budget   int
	states   int
	visited  map[string]struct{}
	order    []int
	// Failure diagnostics: the deepest depth any path reached, the
	// progress vector there, and the per-session blocked ops.
	bestDepth       int
	bestProgress    []int
	bestBlocked     []string
	bestBlockedSeqs []int
	exhausted       bool
}

// stateKey fingerprints a search state: progress vector + base tables.
func (c *checker) stateKey(progress []int) string {
	var b strings.Builder
	for _, p := range progress {
		fmt.Fprintf(&b, "%d,", p)
	}
	fmt.Fprintf(&b, "#%x", c.w.BaseStateHash())
	return b.String()
}

func (c *checker) dfs(progress []int, depth, total int) bool {
	if depth == total {
		return true
	}
	if c.states >= c.budget {
		c.exhausted = true
		return false
	}
	key := c.stateKey(progress)
	if _, seen := c.visited[key]; seen {
		return false
	}
	c.visited[key] = struct{}{}
	c.states++

	var blocked []string
	var blockedSeqs []int
	for s := range c.sessions {
		if progress[s] >= len(c.sessions[s]) {
			continue
		}
		he := c.sessions[s][progress[s]]
		switch he.Op.Kind {
		case workload.Update:
			undo := c.w.ReplayUpdate(he.Update)
			progress[s]++
			c.order = append(c.order, he.Seq)
			if c.dfs(progress, depth+1, total) {
				return true
			}
			c.order = c.order[:len(c.order)-1]
			progress[s]--
			c.w.ReplayUpdate(undo)
		case workload.Query:
			got := Digest(c.w.Access(he.Op.ProcID))
			if !bytes.Equal(got, he.Result) {
				blocked = append(blocked,
					fmt.Sprintf("session %d op %d (seq %d): access(%d) matches no reachable base state",
						s, progress[s], he.Seq, he.Op.ProcID))
				blockedSeqs = append(blockedSeqs, he.Seq)
				continue
			}
			progress[s]++
			c.order = append(c.order, he.Seq)
			if c.dfs(progress, depth+1, total) {
				return true
			}
			c.order = c.order[:len(c.order)-1]
			progress[s]--
		}
	}
	if depth >= c.bestDepth {
		c.bestDepth = depth
		c.bestProgress = append(c.bestProgress[:0], progress...)
		c.bestBlocked = blocked
		c.bestBlockedSeqs = blockedSeqs
	}
	return false
}

// window renders the failure diagnostics: how far serialization got and
// which operations could not be accommodated at the frontier — the
// minimal window in which no serial order exists.
func (c *checker) window() string {
	total := 0
	for _, ops := range c.sessions {
		total += len(ops)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "deepest serial prefix: %d of %d ops; frontier", c.bestDepth, total)
	for s, p := range c.bestProgress {
		fmt.Fprintf(&b, " s%d@%d/%d", s, p, len(c.sessions[s]))
	}
	if len(c.bestBlocked) > 0 {
		fmt.Fprintf(&b, "\nblocked at frontier:\n  %s", strings.Join(c.bestBlocked, "\n  "))
	}
	return b.String()
}
