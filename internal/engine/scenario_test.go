package engine

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/obs"
	"dbproc/internal/sim"
	"dbproc/internal/workload"
)

// scenarioConfig is testConfig with a hostile scenario attached. The
// R2-update mix is kept: scenario updates that are not adversarial still
// split between R1 and R2, so both maintenance paths run.
func scenarioConfig(scenario string, strat costmodel.Strategy, model costmodel.Model, seed int64, k, q int) sim.Config {
	cfg := testConfig(strat, model, seed, k, q)
	cfg.Scenario = scenario
	return cfg
}

// TestScenarioClientsOneMatchesSequential: the standing 1-client
// byte-identity invariant must survive every catalog scenario — one
// client through the engine reproduces the sequential simulator's
// counters and simulated cost exactly.
func TestScenarioClientsOneMatchesSequential(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	scenarios := []string{"hot-key-storm", "nested-batched", "flash-crowd", "adversarial-inval"}
	if testing.Short() {
		scenarios = scenarios[:2]
	}
	for _, scenario := range scenarios {
		for _, strat := range []costmodel.Strategy{costmodel.CacheInvalidate, costmodel.UpdateCacheAVM} {
			t.Run(fmt.Sprintf("%s/%v", scenario, strat), func(t *testing.T) {
				cfg := scenarioConfig(scenario, strat, costmodel.Model2, 51, 12, 20)

				seq := sim.Run(cfg)
				e := New(cfg, Options{Clients: 1, RecordHistory: true})
				got := e.Run(context.Background())

				if got.Queries != seq.Queries || got.Updates != seq.Updates {
					t.Fatalf("op mix %d/%d, sequential %d/%d",
						got.Queries, got.Updates, seq.Queries, seq.Updates)
				}
				if got.Counters != seq.Counters {
					t.Fatalf("counters diverge:\n engine     %v\n sequential %v",
						got.Counters, seq.Counters)
				}
				if got.SimTotalMs != seq.TotalMs {
					t.Fatalf("simulated cost %v, sequential %v", got.SimTotalMs, seq.TotalMs)
				}
			})
		}
	}
}

// TestScenarioRunReplayable: a scenario run is a pure function of
// (scenario, seed) — rebuilding and rerunning yields identical results,
// and the op stream itself is reproducible from the config alone.
func TestScenarioRunReplayable(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	cfg := scenarioConfig("storm-adversarial", costmodel.CacheInvalidate, costmodel.Model1, 77, 10, 16)
	a := sim.Run(cfg)
	b := sim.Run(cfg)
	if a.TotalMs != b.TotalMs || a.Counters != b.Counters || a.TuplesReturned != b.TuplesReturned {
		t.Fatalf("scenario run not replayable:\n a %v\n b %v", a.Counters, b.Counters)
	}
	ops1 := sim.Build(cfg).WorkloadOps()
	ops2 := sim.Build(cfg).WorkloadOps()
	if !reflect.DeepEqual(ops1, ops2) {
		t.Fatal("scenario op stream differs across builds of the same config")
	}
}

// TestScenarioOracleAdversarial is the adversarial-invalidation soak:
// 8 clients hammering the densest i-lock band, with the serializability
// oracle certifying every history (scripts/verify.sh runs it under
// -race in tier 3).
func TestScenarioOracleAdversarial(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	scenarios := []string{"adversarial-inval", "storm-adversarial"}
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, scenario := range scenarios {
		for _, strat := range oracleStrategies {
			t.Run(fmt.Sprintf("%s/%v", scenario, strat), func(t *testing.T) {
				cfg := scenarioConfig(scenario, strat, costmodel.Model2, 2000, 8, 8)
				e := New(cfg, Options{Clients: 8, RecordHistory: true, ThinkMeanMs: 0.2})
				res := e.Run(context.Background())
				if len(res.History) != 16 {
					t.Fatalf("history holds %d ops, want 16", len(res.History))
				}
				rep := CheckSerializable(cfg, res.History, 0)
				if !rep.Serializable {
					t.Fatalf("adversarial history not serializable (exhausted=%v, %d states):\n%s",
						rep.Exhausted, rep.StatesExplored, rep.Window)
				}
			})
		}
	}
}

// TestScenarioConcurrentConsistent: hostile scenarios with bulk updates
// and nested calls must leave every cached procedure value equal to a
// from-scratch recompute, at any client count.
func TestScenarioConcurrentConsistent(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	for _, scenario := range []string{"bulk-load", "nested-naive", "slow-consumers"} {
		for _, strat := range oracleStrategies {
			t.Run(fmt.Sprintf("%s/%v", scenario, strat), func(t *testing.T) {
				cfg := scenarioConfig(scenario, strat, costmodel.Model2, 123, 10, 16)
				e := New(cfg, Options{Clients: 4, ThinkMeanMs: 0.1})
				e.Run(context.Background())
				w := e.World()
				for _, id := range w.ProcIDs() {
					if !bytes.Equal(Digest(w.Access(id)), Digest(w.RecomputeOracle(id))) {
						t.Errorf("procedure %d inconsistent after %s", id, scenario)
					}
				}
			})
		}
	}
}

// TestScenarioNestedFootprintCoversInner: every lock a nested query's
// inner accesses need must be in the op's declared 2PL footprint.
func TestScenarioNestedFootprintCoversInner(t *testing.T) {
	cfg := scenarioConfig("nested-naive", costmodel.CacheInvalidate, costmodel.Model2, 9, 0, 20)
	// The declared-footprint invariant is a property of the pure-2PL read
	// path; with MVCC on, query footprints are intentionally empty.
	e := New(cfg, Options{Clients: 1, DisableMVCC: true})
	w := e.World()
	ops := w.WorkloadOps()
	nested := 0
	for _, op := range ops {
		if op.Nest == 0 {
			continue
		}
		nested++
		f := e.OpFootprint(op).normalized()
		have := map[string]bool{}
		for _, name := range f.names {
			have[name] = true
		}
		for _, id := range append([]int{op.ProcID}, workload.InnerProcs(op, w.ProcIDs())...) {
			if !have[EntryLock(id)] {
				t.Fatalf("op %d footprint misses entry lock for proc %d", op.Index, id)
			}
			for _, rel := range w.ProcRelations(id) {
				if !have[RelLock(rel)] {
					t.Fatalf("op %d footprint misses relation %s", op.Index, rel)
				}
			}
		}
	}
	if nested == 0 {
		t.Fatal("nested scenario generated no nested queries")
	}
}

// TestScenarioPhaseLabels: on a scenario workload, committed-op spans
// must carry the op's schedule phase name, the per-phase commit counters
// must sum to the total, and a polite workload must stay label-free.
func TestScenarioPhaseLabels(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	cfg := scenarioConfig("hot-key-storm", costmodel.CacheInvalidate, costmodel.Model1, 9, 10, 20)
	tr := obs.NewTracer()
	e := New(cfg, Options{Clients: 2, Tracer: tr})
	e.Run(context.Background())

	names := map[string]bool{}
	for _, p := range e.World().Schedule().Phases {
		names[p.Name] = true
	}
	labelled := 0
	for _, sp := range tr.Spans() {
		ph, ok := sp.Attrs["phase"].(string)
		if !ok {
			continue
		}
		labelled++
		if !names[ph] {
			t.Fatalf("span %s carries unknown phase %q (schedule has %v)", sp.Name, ph, names)
		}
	}
	if labelled == 0 {
		t.Fatal("no span carried a phase attribute on a scenario workload")
	}
	var phaseSum, total float64
	for _, m := range e.TelemetryMetrics() {
		switch m.Name {
		case "dbproc_phase_ops_committed_total":
			if !names[m.Labels["phase"]] {
				t.Fatalf("metric phase %q not in schedule", m.Labels["phase"])
			}
			phaseSum += m.Value
		case "dbproc_ops_committed_total":
			total = m.Value
		}
	}
	if phaseSum != total || total == 0 {
		t.Fatalf("per-phase commits %v != total %v", phaseSum, total)
	}

	// Polite run: no phase attrs, no per-phase series.
	polite := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 9, 10, 20)
	ptr := obs.NewTracer()
	pe := New(polite, Options{Clients: 1, Tracer: ptr})
	pe.Run(context.Background())
	for _, sp := range ptr.Spans() {
		if _, ok := sp.Attrs["phase"]; ok {
			t.Fatal("polite workload span carries a phase attribute")
		}
	}
	for _, m := range pe.TelemetryMetrics() {
		if m.Name == "dbproc_phase_ops_committed_total" {
			t.Fatal("polite workload exports per-phase series")
		}
	}
}
