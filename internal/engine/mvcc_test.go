package engine

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
)

// TestMVCCSnapshotSoak is the snapshot-read soak: 8 sessions under the
// storm-adversarial scenario (hot-key query storm stacked on updates
// aimed at the densest i-lock band) with MVCC on — every query reads a
// lock-free snapshot while the adversarial updates churn version chains
// as fast as they can. Meant for -race (scripts/verify.sh tier 3). After
// each run the lifted history must pass the SI-aware oracle and every
// procedure must agree with a fresh recompute. A stall leaves a flight
// dump on disk via the watchdog hook (render with procstat -flight).
func TestMVCCSnapshotSoak(t *testing.T) {
	rec := telemetry.NewRecorder(1 << 14)
	dumpPath := filepath.Join(os.TempDir(), fmt.Sprintf("dbproc-mvcc-soak-flight-%d.jsonl", os.Getpid()))
	rec.SetAutoDumpFile(dumpPath)
	defer dbtest.Watchdog(t, 4*time.Minute, func() {
		rec.Record(telemetry.Event{
			Kind:    telemetry.EvWatchdog,
			Session: -1,
			Seq:     -1,
			Detail:  "mvcc snapshot soak stalled; flight dump at " + dumpPath,
		})
	})()
	strategies := allStrategies
	if testing.Short() {
		strategies = []costmodel.Strategy{costmodel.CacheInvalidate, costmodel.UpdateCacheRVM}
	}
	for _, strat := range strategies {
		t.Run(fmt.Sprintf("%v", strat), func(t *testing.T) {
			cfg := scenarioConfig("storm-adversarial", strat, costmodel.Model2, 4242, 24, 40)
			e := New(cfg, Options{
				Clients: 8, ThinkMeanMs: 0.2,
				RecordHistory: true, Recorder: rec, ProfileLocks: true,
			})
			res := e.Run(context.Background())
			if res.Ops == 0 {
				t.Fatal("soak ran no operations")
			}
			txns := TxnsFromHistory(res.History, e.World().ProcIDs(), e.World().ProcRelations)
			if rep := CheckSnapshotIsolation(txns); !rep.Serializable {
				t.Fatalf("SI oracle flagged the soak history: %s", rep.Window)
			}
			w := e.World()
			for _, id := range w.ProcIDs() {
				if !bytes.Equal(Digest(w.Access(id)), Digest(w.RecomputeOracle(id))) {
					t.Errorf("procedure %d inconsistent after soak", id)
				}
			}
		})
	}
}

// TestMVCCOffMatchesSequential guards the opt-out: with DisableMVCC the
// read path must be byte-identical in cost to the sequential simulator —
// the MVCC machinery's off switch costs nothing (the tier-4 bench guard
// checks the wall-clock side of the same claim).
func TestMVCCOffMatchesSequential(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	for _, strat := range allStrategies {
		t.Run(fmt.Sprintf("%v", strat), func(t *testing.T) {
			cfg := testConfig(strat, costmodel.Model2, 41, 15, 25)
			seq := sim.Build(cfg).Run()
			e := New(cfg, Options{Clients: 1, DisableMVCC: true})
			res := e.Run(context.Background())
			if res.Counters != seq.Counters {
				t.Fatalf("MVCC-off counters diverge from sim.Run:\nengine: %+v\nsim:    %+v",
					res.Counters, seq.Counters)
			}
			if res.SimTotalMs != seq.TotalMs {
				t.Fatalf("MVCC-off simulated cost %v, sequential %v", res.SimTotalMs, seq.TotalMs)
			}
		})
	}
}

// TestMVCCAccessWaitShareCollapse is the prize invariant: under the
// storm-adversarial scenario at 8 clients, the share of access (query)
// wall time spent waiting on locks must be strictly lower with MVCC than
// under pure 2PL — queries acquire no locks at all, so their wait share
// collapses toward zero while 2PL queries queue behind the adversarial
// updates' exclusive footprints.
func TestMVCCAccessWaitShareCollapse(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	cfg := scenarioConfig("storm-adversarial", costmodel.CacheInvalidate, costmodel.Model2, 1123, 24, 40)

	run := func(disable bool) WaitProfile {
		e := New(cfg, Options{Clients: 8, DisableMVCC: disable, ProfileLocks: true})
		e.Run(context.Background())
		return e.WaitProfile()
	}
	twoPL := run(true)
	mvcc := run(false)
	if twoPL.AccessWallNs == 0 || mvcc.AccessWallNs == 0 {
		t.Fatal("no access wall time recorded")
	}
	if mvcc.AccessWaitShare() >= twoPL.AccessWaitShare() {
		t.Fatalf("access wait share did not collapse: mvcc %.4f vs 2PL %.4f",
			mvcc.AccessWaitShare(), twoPL.AccessWaitShare())
	}
	if share := mvcc.AccessWaitShare(); share > 0.10 {
		t.Fatalf("MVCC access wait share %.4f, want near zero", share)
	}
}
