package engine

import (
	"fmt"
	"sort"
	"strings"

	"dbproc/internal/workload"
)

// Txn is one committed transaction in a snapshot-isolation history: it
// read its read set as of snapshot stamp Start and published its write
// set at commit stamp Commit. Read-only transactions have Commit == Start
// (they publish nothing; the stamp is where they read). Items are opaque
// names — relations, keys, cache entries — at whatever granularity the
// history's producer chose.
type Txn struct {
	ID      int      `json:"id"`
	Session int      `json:"session"`
	Start   uint64   `json:"start"`
	Commit  uint64   `json:"commit"`
	Reads   []string `json:"reads"`
	Writes  []string `json:"writes"`
}

// SIEdge is one dependency edge in the serialization graph over a
// snapshot-isolation history.
//
//	wr: From's write of Item was visible to To's snapshot (From.Commit <=
//	    To.Start) — To read From's version.
//	ww: both wrote Item; From committed first.
//	rw: the antidependency — From read Item at a snapshot that did NOT
//	    include To's write (To.Commit > From.Start), so From logically
//	    precedes To even though To may commit first. These are the edges
//	    snapshot isolation admits against commit order, and the only kind
//	    that can close a cycle (write skew).
type SIEdge struct {
	From, To int
	Kind     string
	Item     string
}

// SIReport is the outcome of checking a transaction history for
// serializability under snapshot isolation semantics.
type SIReport struct {
	// Serializable is true when the dependency graph is acyclic.
	Serializable bool
	// Cycle lists the transaction IDs of a minimal detected cycle, in
	// edge order (empty when serializable).
	Cycle []int
	// Edges are the dependency edges forming the cycle.
	Edges []SIEdge
	// Window is the human-readable minimal-window report: for a write
	// skew (2-cycle of rw edges) it names both sessions, both
	// transactions' stamp intervals, and the items each read that the
	// other wrote.
	Window string
}

// visible reports whether writer w's writes are in reader r's snapshot.
func visible(w, r Txn) bool { return len(w.Writes) > 0 && w.Commit <= r.Start }

func intersect(a, b []string) []string {
	set := make(map[string]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	var out []string
	for _, y := range b {
		if _, ok := set[y]; ok {
			out = append(out, y)
		}
	}
	sort.Strings(out)
	return out
}

// siEdges builds the dependency graph. withRW controls whether
// read-write antidependencies are included: the commit-order check
// (pre-MVCC oracle semantics) leaves them out and consequently can never
// see a cycle that only antidependencies close.
func siEdges(txns []Txn, withRW bool) []SIEdge {
	var edges []SIEdge
	for i, a := range txns {
		for j, b := range txns {
			if i == j {
				continue
			}
			if items := intersect(a.Writes, b.Reads); len(items) > 0 && visible(a, b) {
				edges = append(edges, SIEdge{From: a.ID, To: b.ID, Kind: "wr", Item: items[0]})
			}
			if items := intersect(a.Writes, b.Writes); len(items) > 0 && a.Commit < b.Commit {
				edges = append(edges, SIEdge{From: a.ID, To: b.ID, Kind: "ww", Item: items[0]})
			}
			if !withRW {
				continue
			}
			// a read items b wrote, at a snapshot that did not include
			// b's write: a logically precedes b.
			if items := intersect(b.Writes, a.Reads); len(items) > 0 && !visible(b, a) {
				edges = append(edges, SIEdge{From: a.ID, To: b.ID, Kind: "rw", Item: items[0]})
			}
		}
	}
	return edges
}

// findCycle returns a minimal-length cycle in the edge set (a 2-cycle,
// the write-skew shape, whenever one exists), or nil. For each start
// node in ascending ID order it runs one BFS and takes the shortest path
// leading back to the start; the global minimum over starts is the
// minimal cycle, found in O(V·(V+E)) — cheap enough to run on every
// lifted engine history.
func findCycle(txns []Txn, edges []SIEdge) []SIEdge {
	adj := make(map[int][]SIEdge)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
	}
	for from := range adj {
		sort.Slice(adj[from], func(i, j int) bool { return adj[from][i].To < adj[from][j].To })
	}
	ids := make([]int, 0, len(txns))
	for _, t := range txns {
		ids = append(ids, t.ID)
	}
	sort.Ints(ids)
	var best []SIEdge
	for _, start := range ids {
		if c := shortestCycleThrough(start, adj); c != nil && (best == nil || len(c) < len(best)) {
			best = c
			if len(best) == 2 {
				break
			}
		}
	}
	return best
}

// shortestCycleThrough BFS-walks the graph from start and returns the
// shortest edge path that re-enters start, or nil.
func shortestCycleThrough(start int, adj map[int][]SIEdge) []SIEdge {
	type hop struct {
		node int
		via  *SIEdge
		prev int // index into the visit log, -1 for the root
	}
	log := []hop{{node: start, prev: -1}}
	seen := map[int]bool{start: true}
	for i := 0; i < len(log); i++ {
		cur := log[i]
		for j := range adj[cur.node] {
			e := &adj[cur.node][j]
			if e.To == start {
				// Unwind the visit log into the cycle's edge path.
				path := []SIEdge{*e}
				for k := i; log[k].prev != -1; k = log[k].prev {
					path = append([]SIEdge{*log[k].via}, path...)
				}
				return path
			}
			if !seen[e.To] {
				seen[e.To] = true
				log = append(log, hop{node: e.To, via: e, prev: i})
			}
		}
	}
	return nil
}

// CheckCommitOrder is the pre-MVCC oracle semantics lifted to transaction
// histories: it orders transactions by write-read and write-write
// dependencies only. Both edge kinds always point forward in commit/
// visibility order, so this check accepts every snapshot-isolation
// history — including write skew. It exists as the explicit foil the
// corpus tests pin: every anomaly CheckSnapshotIsolation flags below must
// pass this check, demonstrating what the SI-aware oracle adds.
func CheckCommitOrder(txns []Txn) SIReport {
	return checkGraph(txns, false)
}

// CheckSnapshotIsolation tests a transaction history for serializability
// under snapshot isolation by adding read-write antidependency edges to
// the dependency graph and searching for a cycle. The canonical anomaly
// it catches is write skew: two concurrent transactions that each read
// what the other wrote, wrote disjoint items, and both committed — an
// rw/rw 2-cycle invisible to CheckCommitOrder. The report's Window names
// both sessions and the minimal pair of transactions involved.
func CheckSnapshotIsolation(txns []Txn) SIReport {
	return checkGraph(txns, true)
}

func checkGraph(txns []Txn, withRW bool) SIReport {
	edges := siEdges(txns, withRW)
	cycle := findCycle(txns, edges)
	if cycle == nil {
		return SIReport{Serializable: true}
	}
	rep := SIReport{Edges: cycle}
	for _, e := range cycle {
		rep.Cycle = append(rep.Cycle, e.From)
	}
	rep.Window = renderWindow(txns, cycle)
	return rep
}

// renderWindow renders the minimal-window report for a detected cycle.
func renderWindow(txns []Txn, cycle []SIEdge) string {
	byID := make(map[int]Txn, len(txns))
	for _, t := range txns {
		byID[t.ID] = t
	}
	var b strings.Builder
	if len(cycle) == 2 && cycle[0].Kind == "rw" && cycle[1].Kind == "rw" {
		a, c := byID[cycle[0].From], byID[cycle[1].From]
		fmt.Fprintf(&b,
			"write skew between session %d (txn %d, stamps [%d,%d]) and session %d (txn %d, stamps [%d,%d]): "+
				"txn %d read %q which txn %d wrote, and txn %d read %q which txn %d wrote; "+
				"neither snapshot saw the other's write",
			a.Session, a.ID, a.Start, a.Commit,
			c.Session, c.ID, c.Start, c.Commit,
			a.ID, cycle[0].Item, c.ID, c.ID, cycle[1].Item, a.ID)
		return b.String()
	}
	fmt.Fprintf(&b, "non-serializable cycle of %d transactions:", len(cycle))
	for _, e := range cycle {
		f, t := byID[e.From], byID[e.To]
		fmt.Fprintf(&b, "\n  txn %d (session %d) -%s[%s]-> txn %d (session %d)",
			e.From, f.Session, e.Kind, e.Item, e.To, t.Session)
	}
	return b.String()
}

// TxnsFromHistory lifts an engine run's history into the transaction form
// CheckSnapshotIsolation takes: each query becomes a read-only
// transaction over its procedures' source relations at its snapshot
// stamp, and each update a writer of its target relations at its commit
// stamp (updates read what they modify at their own stamp — they run
// under exclusive locks on current state). relsOf maps a procedure id to
// its source relations (Engine.World().ProcRelations). In a real engine
// run updates are totally ordered and queries read-only, so the lifted
// history is always serializable — the 8-client soak asserts exactly
// that; the detector's positive cases come from the synthetic corpus.
func TxnsFromHistory(hist []HistoryEntry, procIDs []int, relsOf func(id int) []string) []Txn {
	txns := make([]Txn, 0, len(hist))
	for _, he := range hist {
		t := Txn{ID: he.Seq, Session: he.Session, Start: he.Snap, Commit: he.Snap}
		if he.Op.Kind == workload.Update {
			// The update read-modify-writes its targets at its commit
			// stamp: model its reads as of the predecessor state.
			if t.Start > 0 {
				t.Start--
			}
			t.Reads = []string{"r1", "r2", "r3"}
			t.Writes = []string{"r1", "r2"}
		} else {
			seen := map[string]bool{}
			for _, id := range append([]int{he.Op.ProcID}, workload.InnerProcs(he.Op, procIDs)...) {
				for _, rel := range relsOf(id) {
					if !seen[rel] {
						seen[rel] = true
						t.Reads = append(t.Reads, rel)
					}
				}
			}
			sort.Strings(t.Reads)
		}
		txns = append(txns, t)
	}
	return txns
}
