package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dbproc/internal/storage"
	"dbproc/internal/telemetry"
	"dbproc/internal/workload"
)

// Session is one open client session of a live engine: a private pager
// and meter over the shared disk, the session's running statistics, and
// its latency sketches. Run opens one per configured client; a server
// front-end (cmd/procserved) instead opens sessions up front and drives
// each with Exec as operations arrive off the wire. A Session is not
// safe for concurrent use — the engine's lock table isolates sessions
// from each other, but each session must submit one operation at a time.
type Session struct {
	e  *Engine
	id int
	pg *storage.Pager
	st SessionStats
	// ws is the pager's wall-clock segment accumulator; nil unless
	// Options.CritPath.
	ws *storage.WallStats
	// wallSk / simSk are the session's private latency sketches; nil
	// unless Options.Sketches.
	wallSk *telemetry.Sketch
	simSk  *telemetry.Sketch

	latencies []int64
}

// OpOutcome reports one committed operation back to the submitter — the
// per-op attributes a served client sees (docs/SERVING.md): the commit
// sequence, the simulated cost, and the wall-clock decomposition. The
// critical-path segments (IONs/RecomputeNs/ComputeNs) are populated only
// under Options.CritPath — without it ComputeNs is zero and WaitNs is
// the raw acquisition wait; WallNs is always measured.
type OpOutcome struct {
	Seq    int
	Tuples int
	// Digest is the canonical query-result digest; nil for updates and
	// when Options.RecordHistory is off.
	Digest []byte
	// CostMs is the op's simulated cost (the session meter's delta priced
	// at the run's cost constants).
	CostMs      float64
	WallNs      int64
	WaitNs      int64
	IONs        int64
	RecomputeNs int64
	ComputeNs   int64
}

// Deal splits the canonical operation stream round-robin across n
// sessions — op i goes to session i mod n, preserving each session's
// program order. Run deals this way, and a served bench harness must
// deal identically for a served run to commit the same per-session
// streams (docs/SERVING.md).
func Deal(ops []workload.Op, n int) [][]workload.Op {
	if n < 1 {
		n = 1
	}
	per := make([][]workload.Op, n)
	for i, op := range ops {
		per[i%n] = append(per[i%n], op)
	}
	return per
}

// OpenSession opens session id (0 <= id < Options.Clients); each id may
// be opened once per engine. The session's private pager and meter share
// the world's disk but carry their own operation scope and cost
// attribution. A fresh session pager is in exactly the state Build
// leaves the world's pager, so one session executing the sequential
// stream reproduces sim.Run byte for byte.
func (e *Engine) OpenSession(id int) *Session {
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	if id < 0 || id >= len(e.sessions) {
		panic(fmt.Sprintf("engine: session %d out of range (%d clients)", id, len(e.sessions)))
	}
	if e.sessions[id] != nil {
		panic(fmt.Sprintf("engine: session %d already open", id))
	}
	s := &Session{e: e, id: id, pg: e.w.SessionPager(id)}
	s.st.Session = id
	if e.opt.CritPath {
		s.ws = s.pg.EnableWallStats()
	}
	if e.opt.Sketches {
		s.wallSk = telemetry.NewSketch()
		s.simSk = telemetry.NewSketch()
	}
	e.sessions[id] = s
	return s
}

// ID returns the session's id.
func (s *Session) ID() int { return s.id }

// Stats snapshots the session's statistics so far. The sketch summaries
// are filled in by Close.
func (s *Session) Stats() SessionStats { return s.st }

// Think records d of think time against the session's wall-clock
// decomposition (the closed-loop pause between operations).
func (s *Session) Think(d time.Duration) { s.st.ThinkNs += int64(d) }

// Close finalizes the session's statistics (latency sketch summaries).
// Call once the session will submit no more operations; Finish reads
// what Close sealed.
func (s *Session) Close() {
	if s.wallSk != nil {
		s.st.WallLatency = s.wallSk.Summary()
		s.st.SimLatency = s.simSk.Summary()
	}
}

// Exec executes one workload operation for this session: acquire the
// op's 2PL footprint, run the operation body on the session's private
// pager, and commit — sequence draw, span adoption, aggregate merge and
// history append form one atomic step, taken while the footprint is
// still held. This is the loop body of Run, exported so a wire
// front-end can submit a session's operations one at a time.
func (s *Session) Exec(op workload.Op) OpOutcome {
	e := s.e
	rec := e.opt.Recorder
	critOn := e.opt.CritPath
	meter := s.pg.Meter()

	var opName string
	if rec != nil || critOn {
		if op.Kind == workload.Query {
			opName = fmt.Sprintf("query proc:%d", op.ProcID)
		} else {
			opName = "update"
		}
	}
	if rec != nil {
		rec.Op(telemetry.EvOpBegin, s.id, -1, opName, 0, 0)
	}
	e.inflight.Add(1)
	blameTag := ""
	if critOn {
		blameTag = opName
	}
	opStart := time.Now()
	held := e.locks.AcquireAs(e.footprint(op), s.id, blameTag)
	waited := time.Since(opStart)
	waits := held.Waits()
	// MVCC threading (docs/MVCC.md): a query opens a snapshot — reads
	// resolve version chains and published directory copies at that stamp,
	// lock-free. An update opens the write epoch (its exclusive r1/r2
	// locks guarantee it is the only one): its writes stage privately and
	// publish atomically at commit under the commit mutex.
	disk := e.w.Disk()
	mvccOn := !e.opt.DisableMVCC
	var snap uint64
	var releaseSnap func()
	if mvccOn {
		if op.Kind == workload.Update {
			disk.BeginEpoch()
			s.pg.SetEpoch(true)
		} else {
			snap, releaseSnap = disk.AcquireSnapshot()
			s.pg.SetSnapshot(snap)
		}
	}
	if rec != nil {
		for _, lw := range waits {
			if critOn {
				rec.Record(telemetry.Event{
					Kind: telemetry.EvLockAcquire, Session: s.id, Seq: -1,
					Name: lw.Name, WaitNs: lw.WaitNs,
					Detail: fmt.Sprintf("held by session %d (%s)", lw.HolderSession, lw.HolderOp),
				})
			} else {
				rec.Op(telemetry.EvLockAcquire, s.id, -1, lw.Name, lw.WaitNs, 0)
			}
		}
	}

	if critOn {
		s.ws.Reset()
	}
	before := meter.Breakdown()
	r := e.w.ExecOpOn(s.pg, op)
	deltaBd := meter.Breakdown().Sub(before)
	delta := deltaBd.Total()
	var ioNs, recomputeNs int64
	if critOn {
		ioNs, recomputeNs = s.ws.IONs, s.ws.RecomputeNs
	}

	out := OpOutcome{
		CostMs:      delta.Milliseconds(e.costs),
		IONs:        ioNs,
		RecomputeNs: recomputeNs,
	}

	// Commit: draw the sequence, adopt the operation's span, merge the
	// session's cost delta into the run aggregate and append the history
	// entry — one atomic step, taken while the 2PL footprint is still
	// held so commit order serializes conflicting operations.
	e.commitMu.Lock()
	seq := e.seq
	e.seq++
	var stamp uint64
	if mvccOn && op.Kind == workload.Update {
		// The commit stamp is drawn from the same counter as the commit
		// sequence (stamp 0 is the pre-run state), so version visibility
		// and commit order can never disagree. Publishing under commitMu
		// makes the version-chain links and the stamp advance one atomic
		// step from any snapshot acquirer's point of view.
		stamp = uint64(seq) + 1
		disk.Publish(stamp)
		s.pg.SetEpoch(false)
	}
	if t := e.opt.Tracer; t != nil {
		name := "session.update"
		if op.Kind == workload.Query {
			name = "session.query"
		}
		sp := t.Adopt(name, e.agg.Total().Milliseconds(e.costs), delta, e.costs)
		if op.Kind == workload.Query {
			sp.Set("proc", op.ProcID)
		}
		sp.Set("session", s.id)
		sp.Set("seq", seq)
		if ph := e.phaseName(op.Phase); ph != "" {
			sp.Set("phase", ph)
		}
		if rec != nil {
			sp.Set("wall_wait_ns", int64(waited))
		}
		if critOn && len(waits) > 0 {
			// Blame attributes feed the Chrome-trace flow events
			// (obs.WriteChromeTrace draws an arrow from the blamed
			// session's latest span to this one).
			var bss, bls strings.Builder
			for i, lw := range waits {
				if i > 0 {
					bss.WriteByte(',')
					bls.WriteByte(',')
				}
				bss.WriteString(strconv.Itoa(lw.HolderSession))
				bls.WriteString(lw.Name)
			}
			sp.Set("blame_sessions", bss.String())
			sp.Set("blame_locks", bls.String())
		}
	}
	e.agg.AddBreakdown(deltaBd)
	if e.opt.RecordHistory {
		he := HistoryEntry{Session: s.id, Seq: seq, Op: op, CostMs: out.CostMs}
		if op.Kind == workload.Update {
			he.Update = r.Update
			he.Snap = stamp
		} else {
			he.Result = Digest(r.Tuples)
			he.Tuples = len(r.Tuples)
			he.Snap = snap
			out.Digest = he.Result
		}
		e.hist = append(e.hist, he)
	}
	e.commitMu.Unlock()
	if releaseSnap != nil {
		s.pg.ClearSnapshot()
		releaseSnap()
	}
	held.Release()
	if mvccOn && op.Kind == workload.Update {
		// Version-chain GC runs outside the update's footprint under its
		// own lock: waits here are MVCC bookkeeping, never update-footprint
		// contention, and procdoctor classifies them by the mvcc: name.
		var gcf Footprint
		gcf.Exclusive(GCLock)
		gcHeld := e.locks.AcquireAs(gcf, s.id, "gc")
		disk.GCVersions()
		if critOn {
			gcWaits := gcHeld.Waits()
			if len(gcWaits) > 0 {
				e.critMu.Lock()
				for _, lw := range gcWaits {
					k := blockerKey{lw.Name, lw.HolderSession, lw.HolderOp}
					bs := e.blockers[k]
					if bs == nil {
						bs = &BlockerStat{Lock: lw.Name, HolderSession: lw.HolderSession, HolderOp: lw.HolderOp}
						e.blockers[k] = bs
					}
					bs.Waits++
					bs.WaitNs += lw.WaitNs
				}
				e.critMu.Unlock()
			}
		}
		gcHeld.Release()
	}
	service := time.Since(opStart) - waited
	e.inflight.Add(-1)
	e.committed.Add(1)
	e.countPhase(op.Phase)
	e.waitNsTot.Add(int64(waited))
	e.wallNsTot.Add(int64(waited + service))
	if op.Kind == workload.Query {
		e.accWaitNs.Add(int64(waited))
		e.accWallNs.Add(int64(waited + service))
	} else {
		e.updWaitNs.Add(int64(waited))
		e.updWallNs.Add(int64(waited + service))
	}
	out.Seq = seq
	out.Tuples = len(r.Tuples)
	out.WallNs = int64(waited + service)
	out.WaitNs = int64(waited)
	if rec != nil {
		rec.Op(telemetry.EvOpCommit, s.id, seq, opName, int64(waited), int64(service))
		rec.Op(telemetry.EvLockRelease, s.id, seq, opName, 0, int64(waited+service))
	}
	if critOn {
		// The wait segment is the sum of measured per-lock blocking
		// times, so the blame edges partition it exactly; the (tiny)
		// non-blocking acquisition overhead inside `waited` lands in the
		// compute remainder instead.
		cp := OpCritPath{
			Session: s.id, Seq: seq, Op: opName,
			WallNs: int64(waited + service),
			IONs:   ioNs, RecomputeNs: recomputeNs,
		}
		for _, lw := range waits {
			cp.WaitNs += lw.WaitNs
			cp.Blame = append(cp.Blame, BlameEdge{
				Lock: lw.Name, WaitNs: lw.WaitNs,
				HolderSession: lw.HolderSession, HolderOp: lw.HolderOp,
			})
		}
		cp.ComputeNs = cp.WallNs - cp.WaitNs - cp.IONs - cp.RecomputeNs
		out.WaitNs = cp.WaitNs
		out.ComputeNs = cp.ComputeNs
		e.segWait.Add(cp.WaitNs)
		e.segIO.Add(cp.IONs)
		e.segRecompute.Add(cp.RecomputeNs)
		e.segCompute.Add(cp.ComputeNs)
		e.critMu.Lock()
		e.crits = append(e.crits, cp)
		for _, b := range cp.Blame {
			k := blockerKey{b.Lock, b.HolderSession, b.HolderOp}
			bs := e.blockers[k]
			if bs == nil {
				bs = &BlockerStat{Lock: b.Lock, HolderSession: b.HolderSession, HolderOp: b.HolderOp}
				e.blockers[k] = bs
			}
			bs.Waits++
			bs.WaitNs += b.WaitNs
		}
		e.critMu.Unlock()
	}
	if e.det != nil && e.committed.Load()%16 == 0 {
		if e.opt.Sketches {
			e.det.CheckLatency(e.wallSk.Quantile(0.99))
		}
		e.det.CheckContention(e.waitNsTot.Load(), e.wallNsTot.Load())
	}
	if e.opt.Sketches {
		wallNs := float64(waited + service)
		e.wallSk.Observe(wallNs)
		e.simSk.Observe(out.CostMs)
		s.wallSk.Observe(wallNs)
		s.simSk.Observe(out.CostMs)
	}

	s.st.Ops++
	if op.Kind == workload.Query {
		s.st.Queries++
		s.st.Tuples += len(r.Tuples)
	} else {
		s.st.Updates++
	}
	s.st.Counters = s.st.Counters.Add(delta)
	s.st.WaitNs += int64(waited)
	s.st.ServiceNs += int64(service)
	s.latencies = append(s.latencies, int64(waited+service))
	return out
}

// Finish assembles the run's Result from the opened sessions, in
// session-id order. Sessions should be Closed first so their sketch
// summaries are sealed; Run does this, and a server front-end does it
// when the world is torn down. wall is the run's elapsed wall-clock in
// seconds, measured by whoever drove the sessions.
func (e *Engine) Finish(wall float64) Result {
	e.sessMu.Lock()
	sessions := append([]*Session(nil), e.sessions...)
	e.sessMu.Unlock()

	res := Result{Clients: len(sessions), Sessions: make([]SessionStats, len(sessions)), WallSec: wall}
	for i, sess := range sessions {
		if sess == nil {
			res.Sessions[i] = SessionStats{Session: i}
			continue
		}
		res.Sessions[i] = sess.st
		st := &res.Sessions[i]
		res.Ops += st.Ops
		res.Queries += st.Queries
		res.Updates += st.Updates
		res.TuplesReturned += st.Tuples
		res.Counters = res.Counters.Add(st.Counters)
		res.LatencyNs = append(res.LatencyNs, sess.latencies...)
	}
	if res.WallSec > 0 {
		res.Throughput = float64(res.Ops) / res.WallSec
	}
	res.SimTotalMs = res.Counters.Milliseconds(e.costs)
	res.History = e.hist
	if e.opt.ProfileLocks {
		res.Contention = e.locks.Contention()
	}
	if e.opt.Sketches {
		res.WallLatency = e.wallSk.Summary()
		res.SimLatency = e.simSk.Summary()
	}
	if e.opt.CritPath {
		e.critMu.Lock()
		res.CritPaths = append([]OpCritPath(nil), e.crits...)
		e.critMu.Unlock()
		sort.Slice(res.CritPaths, func(i, j int) bool { return res.CritPaths[i].Seq < res.CritPaths[j].Seq })
		res.TopBlockers = e.TopBlockers(0)
	}
	if e.det != nil {
		if l := e.w.Config().Ledger; l != nil {
			st := l.Stats()
			e.det.CheckWastedWork(st.WastedMs, st.ComputeMs)
		}
	}
	return res
}
