package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbproc/internal/dbtest"
)

func TestFootprintNormalize(t *testing.T) {
	var f Footprint
	f.Shared(RelLock("r2"), RelLock("r1"))
	f.Exclusive(RelLock("r1"))
	f.Shared(EntryLock(3))
	f.Exclusive(EntryLock(12))
	f.normalize()

	wantNames := []string{EntryLock(3), EntryLock(12), RelLock("r1"), RelLock("r2")}
	wantExcl := []bool{false, true, true, false}
	if len(f.names) != len(wantNames) {
		t.Fatalf("normalized to %d entries, want %d: %v", len(f.names), len(wantNames), f.names)
	}
	for i := range wantNames {
		if f.names[i] != wantNames[i] || f.excl[i] != wantExcl[i] {
			t.Errorf("entry %d = (%s, excl=%v), want (%s, excl=%v)",
				i, f.names[i], f.excl[i], wantNames[i], wantExcl[i])
		}
	}
}

func TestEntryLockOrdering(t *testing.T) {
	// Zero-padding must make lexicographic order equal numeric order, or
	// the canonical acquisition order breaks for ids past 9.
	if !(EntryLock(9) < EntryLock(10) && EntryLock(10) < EntryLock(100)) {
		t.Fatalf("entry lock names do not sort numerically: %q %q %q",
			EntryLock(9), EntryLock(10), EntryLock(100))
	}
}

func TestLockTableMutualExclusion(t *testing.T) {
	defer dbtest.Watchdog(t, 30*time.Second)()
	tab := NewLockTable()
	var counter, max int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var f Footprint
				f.Exclusive(RelLock("r1"))
				h := tab.Acquire(f)
				if c := atomic.AddInt64(&counter, 1); c > atomic.LoadInt64(&max) {
					atomic.StoreInt64(&max, c)
				}
				atomic.AddInt64(&counter, -1)
				h.Release()
			}
		}()
	}
	wg.Wait()
	if atomic.LoadInt64(&max) != 1 {
		t.Fatalf("%d holders inside an exclusive section", max)
	}
}

func TestLockTableSharedAdmitsReaders(t *testing.T) {
	defer dbtest.Watchdog(t, 30*time.Second)()
	tab := NewLockTable()
	var f Footprint
	f.Shared(RelLock("r1"))
	h1 := tab.Acquire(f)
	done := make(chan struct{})
	go func() {
		var f2 Footprint
		f2.Shared(RelLock("r1"))
		tab.Acquire(f2).Release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second shared acquisition blocked behind the first")
	}
	h1.Release()
}

// TestLockTableNoDeadlockUnderInversion hammers two footprints that, if
// acquired in request order rather than canonical order, would deadlock
// (AB vs BA). Canonical ordering must make the schedule deadlock-free.
func TestLockTableNoDeadlockUnderInversion(t *testing.T) {
	defer dbtest.Watchdog(t, 30*time.Second)()
	tab := NewLockTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var f Footprint
				if g%2 == 0 {
					f.Exclusive(RelLock("a"), RelLock("b"))
				} else {
					f.Exclusive(RelLock("b"), RelLock("a"))
				}
				tab.Acquire(f).Release()
			}
		}(g)
	}
	wg.Wait()
}
