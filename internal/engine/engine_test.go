package engine

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/sim"
	"dbproc/internal/telemetry"
)

// testConfig is a scaled-down parameter point: populations small enough
// that 8-session runs and oracle searches finish in test time, but with
// both procedure classes, locality skew, and a nonzero R2-update mix so
// every maintenance path executes.
func testConfig(strat costmodel.Strategy, model costmodel.Model, seed int64, k, q int) sim.Config {
	p := costmodel.Default()
	p.N = 600
	p.F = 8.0 / p.N
	p.F2 = 0.02
	p.N1 = 3
	p.N2 = 3
	p.L = 2
	p.SF = 0.5
	p.Z = 0.3
	p.K = float64(k)
	p.Q = float64(q)
	return sim.Config{
		Params:           p,
		Model:            model,
		Strategy:         strat,
		Seed:             seed,
		R2UpdateFraction: 0.3,
	}
}

var allStrategies = []costmodel.Strategy{
	costmodel.AlwaysRecompute,
	costmodel.CacheInvalidate,
	costmodel.UpdateCacheAVM,
	costmodel.UpdateCacheRVM,
}

// TestClientsOneMatchesSequential is the acceptance gate for the
// sequential path: one client through the engine must reproduce the
// sequential simulator byte for byte — same operation stream, same
// per-query results, same cost counters.
func TestClientsOneMatchesSequential(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	for _, strat := range allStrategies {
		for _, model := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
			t.Run(fmt.Sprintf("%v/%v", strat, model), func(t *testing.T) {
				cfg := testConfig(strat, model, 41, 15, 25)

				seq := sim.Run(cfg)
				e := New(cfg, Options{Clients: 1, RecordHistory: true})
				got := e.Run(context.Background())

				if got.Queries != seq.Queries || got.Updates != seq.Updates {
					t.Fatalf("op mix %d/%d, sequential %d/%d",
						got.Queries, got.Updates, seq.Queries, seq.Updates)
				}
				if got.TuplesReturned != seq.TuplesReturned {
					t.Fatalf("tuples %d, sequential %d", got.TuplesReturned, seq.TuplesReturned)
				}
				if got.Counters != seq.Counters {
					t.Fatalf("counters diverge:\n engine     %v\n sequential %v",
						got.Counters, seq.Counters)
				}
				if got.SimTotalMs != seq.TotalMs {
					t.Fatalf("simulated cost %v, sequential %v", got.SimTotalMs, seq.TotalMs)
				}

				// Per-operation byte identity: replay the same config
				// sequentially and compare each query's result digest.
				w := sim.Build(cfg)
				ops := w.WorkloadOps()
				if len(ops) != len(got.History) {
					t.Fatalf("history has %d ops, workload %d", len(got.History), len(ops))
				}
				for i, op := range ops {
					he := got.History[i]
					if he.Op != op {
						t.Fatalf("op %d is %+v, workload %+v", i, he.Op, op)
					}
					r := w.ExecOp(op)
					if op == he.Op && he.Result != nil {
						if !bytes.Equal(he.Result, Digest(r.Tuples)) {
							t.Fatalf("op %d result digest diverges from sequential execution", i)
						}
					}
				}
			})
		}
	}
}

// TestConcurrentFinalStateConsistent runs multi-session workloads for
// every caching strategy and checks that every cached procedure value
// agrees with a from-scratch recompute of its definition over the final
// base tables.
func TestConcurrentFinalStateConsistent(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	for _, strat := range allStrategies[1:] { // caching strategies only
		for _, clients := range []int{2, 8} {
			t.Run(fmt.Sprintf("%v/clients=%d", strat, clients), func(t *testing.T) {
				cfg := testConfig(strat, costmodel.Model2, 97, 12, 20)
				e := New(cfg, Options{Clients: clients})
				e.Run(context.Background())
				w := e.World()
				for _, id := range w.ProcIDs() {
					got := Digest(w.Access(id))
					want := Digest(w.RecomputeOracle(id))
					if !bytes.Equal(got, want) {
						t.Errorf("procedure %d: cached value diverges from recompute", id)
					}
				}
			})
		}
	}
}

// oracleStrategies are the three maintenance paths the serializability
// oracle must cover per the acceptance criteria.
var oracleStrategies = []costmodel.Strategy{
	costmodel.CacheInvalidate,
	costmodel.UpdateCacheAVM,
	costmodel.UpdateCacheRVM,
}

// TestOracleSerializable runs concurrent histories and checks each is
// equivalent to some serial order. Workload size shrinks as the session
// count grows: the oracle's state space is the product of per-session
// positions, and 8 sessions of 2 ops each stay within budget while still
// interleaving every maintenance path.
func TestOracleSerializable(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	cases := []struct{ clients, k, q int }{
		{1, 12, 20},
		{2, 10, 14},
		{8, 8, 8},
	}
	for _, strat := range oracleStrategies {
		for _, model := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
			for _, c := range cases {
				if testing.Short() && c.clients == 8 && model == costmodel.Model2 {
					continue
				}
				name := fmt.Sprintf("%v/%v/clients=%d", strat, model, c.clients)
				t.Run(name, func(t *testing.T) {
					cfg := testConfig(strat, model, 1000+int64(c.clients), c.k, c.q)
					e := New(cfg, Options{Clients: c.clients, RecordHistory: true})
					res := e.Run(context.Background())
					if len(res.History) != c.k+c.q {
						t.Fatalf("history holds %d ops, want %d", len(res.History), c.k+c.q)
					}
					rep := CheckSerializable(cfg, res.History, 0)
					if !rep.Serializable {
						t.Fatalf("history not serializable (exhausted=%v, %d states):\n%s",
							rep.Exhausted, rep.StatesExplored, rep.Window)
					}
					if len(rep.Order) != len(res.History) {
						t.Fatalf("witness order has %d ops, want %d", len(rep.Order), len(res.History))
					}
				})
			}
		}
	}
}

// TestOracleRejectsCorruptedHistory corrupts one query's recorded result
// and checks the oracle proves non-serializability and reports the
// window.
func TestOracleRejectsCorruptedHistory(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	cfg := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 7, 6, 10)
	e := New(cfg, Options{Clients: 2, RecordHistory: true})
	res := e.Run(context.Background())

	corrupted := -1
	for i := range res.History {
		if res.History[i].Result != nil {
			res.History[i].Result = append([]byte(nil), res.History[i].Result...)
			res.History[i].Result[0] ^= 0xFF
			corrupted = i
			break
		}
	}
	if corrupted < 0 {
		t.Fatal("workload produced no queries")
	}
	rep := CheckSerializable(cfg, res.History, 0)
	if rep.Serializable {
		t.Fatal("oracle accepted a corrupted history")
	}
	if rep.Exhausted {
		t.Fatalf("oracle ran out of budget instead of proving non-serializability (%d states)",
			rep.StatesExplored)
	}
	if rep.Window == "" {
		t.Fatal("non-serializable verdict carries no window report")
	}
	t.Logf("window report:\n%s", rep.Window)
}

// TestRaceStress is the soak: 8 sessions per caching strategy and model
// with think time enabled, meant to run under -race (scripts/verify.sh
// tier 3 does). Short mode trims the matrix.
//
// The soak runs with the flight recorder attached and a watchdog hook
// that records a watchdog.fire event on a stall: because watchdog.fire is
// an auto-dump trigger, a deadlocked soak leaves a flight dump on disk
// (render with procstat -flight) before the goroutine dump panics.
func TestRaceStress(t *testing.T) {
	rec := telemetry.NewRecorder(1 << 14)
	dumpPath := filepath.Join(os.TempDir(), fmt.Sprintf("dbproc-race-stress-flight-%d.jsonl", os.Getpid()))
	rec.SetAutoDumpFile(dumpPath)
	defer dbtest.Watchdog(t, 4*time.Minute, func() {
		rec.Record(telemetry.Event{
			Kind:    telemetry.EvWatchdog,
			Session: -1,
			Seq:     -1,
			Detail:  "race-stress soak stalled; flight dump at " + dumpPath,
		})
	})()
	models := []costmodel.Model{costmodel.Model1, costmodel.Model2}
	if testing.Short() {
		models = models[:1]
	}
	for _, strat := range oracleStrategies {
		for _, model := range models {
			t.Run(fmt.Sprintf("%v/%v", strat, model), func(t *testing.T) {
				cfg := testConfig(strat, model, 31337, 24, 40)
				e := New(cfg, Options{Clients: 8, ThinkMeanMs: 0.2, Recorder: rec, ProfileLocks: true})
				res := e.Run(context.Background())
				if res.Ops != 64 {
					t.Fatalf("ran %d ops, want 64", res.Ops)
				}
				w := e.World()
				for _, id := range w.ProcIDs() {
					if !bytes.Equal(Digest(w.Access(id)), Digest(w.RecomputeOracle(id))) {
						t.Errorf("procedure %d inconsistent after soak", id)
					}
				}
			})
		}
	}
}

// TestRunHonorsContext checks cancellation stops sessions between
// operations rather than deadlocking.
func TestRunHonorsContext(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	cfg := testConfig(costmodel.CacheInvalidate, costmodel.Model1, 3, 20, 30)
	e := New(cfg, Options{Clients: 4, ThinkMeanMs: 50})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.Run(ctx)
	if res.Ops >= 50 {
		t.Fatalf("cancelled run still executed all %d ops", res.Ops)
	}
}

// TestSessionAttribution checks per-session counters sum to the run
// total and sessions each did work.
func TestSessionAttribution(t *testing.T) {
	defer dbtest.Watchdog(t, time.Minute)()
	cfg := testConfig(costmodel.UpdateCacheAVM, costmodel.Model2, 11, 12, 20)
	e := New(cfg, Options{Clients: 4})
	res := e.Run(context.Background())
	var sum int
	var counters = res.Counters
	for _, st := range res.Sessions {
		sum += st.Ops
		counters = counters.Sub(st.Counters)
	}
	if sum != res.Ops {
		t.Fatalf("session ops sum %d, run total %d", sum, res.Ops)
	}
	var zero = res.Counters.Sub(res.Counters)
	if counters != zero {
		t.Fatalf("per-session counters do not sum to the run total (residue %v)", counters)
	}
	for _, st := range res.Sessions {
		if st.Ops == 0 {
			t.Errorf("session %d did no work", st.Session)
		}
	}
	if p50, p95 := res.Percentile(50), res.Percentile(95); p50 < 0 || p95 < p50 {
		t.Fatalf("latency percentiles inconsistent: p50=%d p95=%d", p50, p95)
	}
}
