package engine

import (
	"hash/maphash"
	"sync"
	"testing"
)

// seedLockTable replicates the pre-profiler lock table's hot path — map
// lookup under the shard mutex, then a plain RWMutex acquire, no clock
// reads — as the baseline the profiling-off path is held to (within ~5%;
// see scripts/verify.sh tier 4).
type seedLockTable struct {
	seed   maphash.Seed
	shards [lockShards]seedLockShard
}

type seedLockShard struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
}

func newSeedLockTable() *seedLockTable {
	t := &seedLockTable{seed: maphash.MakeSeed()}
	for i := range t.shards {
		t.shards[i].locks = make(map[string]*sync.RWMutex)
	}
	return t
}

func (t *seedLockTable) lock(name string) *sync.RWMutex {
	s := &t.shards[maphash.String(t.seed, name)%lockShards]
	s.mu.Lock()
	l := s.locks[name]
	if l == nil {
		l = &sync.RWMutex{}
		s.locks[name] = l
	}
	s.mu.Unlock()
	return l
}

func (t *seedLockTable) acquire(f Footprint) ([]*sync.RWMutex, []bool) {
	f.normalize()
	locks := make([]*sync.RWMutex, len(f.names))
	for i, name := range f.names {
		l := t.lock(name)
		if f.excl[i] {
			l.Lock()
		} else {
			l.RLock()
		}
		locks[i] = l
	}
	return locks, f.excl
}

// benchFootprint is a representative query footprint: two shared
// relation locks plus one exclusive cache-entry lock.
func benchFootprint() Footprint {
	var f Footprint
	f.Shared(RelLock("r1"), RelLock("r2"))
	f.Exclusive(EntryLock(17))
	return f
}

// BenchmarkAcquireSeedBaseline measures the pre-profiler acquire/release
// cycle: the denominator of the lock-table overhead guard.
func BenchmarkAcquireSeedBaseline(b *testing.B) {
	t := newSeedLockTable()
	for i := 0; i < b.N; i++ {
		locks, excl := t.acquire(benchFootprint())
		for j := len(locks) - 1; j >= 0; j-- {
			if excl[j] {
				locks[j].Unlock()
			} else {
				locks[j].RUnlock()
			}
		}
	}
}

// BenchmarkAcquireProfilingOff measures the same cycle on the production
// lock table with the contention profiler disabled — the zero-telemetry
// path. The guard in scripts/verify.sh tier 4 asserts it stays within
// ~5% of BenchmarkAcquireSeedBaseline.
func BenchmarkAcquireProfilingOff(b *testing.B) {
	t := NewLockTable()
	for i := 0; i < b.N; i++ {
		t.Acquire(benchFootprint()).Release()
	}
	if t.Profiling() {
		b.Fatal("profiling unexpectedly on")
	}
}

// BenchmarkAcquireBlameOff measures AcquireAs with a session id but no
// blame tag on the profiling-off table: the path every non-diagnosis
// run takes after the blame plumbing landed. The guard in
// scripts/verify.sh tier 4 asserts it stays within ~5% of
// BenchmarkAcquireSeedBaseline — blame attribution must cost nothing
// when off.
func BenchmarkAcquireBlameOff(b *testing.B) {
	t := NewLockTable()
	for i := 0; i < b.N; i++ {
		t.AcquireAs(benchFootprint(), 3, "").Release()
	}
	if t.Profiling() {
		b.Fatal("profiling unexpectedly on")
	}
}

// BenchmarkAcquireProfilingOn prices the profiler itself (uncontended
// case: one TryLock and two clock reads per lock). Informational — not
// guarded, since enabling telemetry is an explicit opt-in.
func BenchmarkAcquireProfilingOn(b *testing.B) {
	t := NewLockTable()
	t.EnableProfiling()
	for i := 0; i < b.N; i++ {
		t.Acquire(benchFootprint()).Release()
	}
	if len(t.Contention()) == 0 {
		b.Fatal("no profile recorded")
	}
}
