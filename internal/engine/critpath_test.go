package engine

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"dbproc/internal/cache"
	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
	"dbproc/internal/sim"
)

// TestCritPathSumsToWall is the acceptance property for the critical-path
// decomposition: under an 8-client contended run, every committed op's
// wall time splits exactly — WaitNs + IONs + RecomputeNs + ComputeNs ==
// WallNs with ComputeNs never negative — and every lock-wait blame edge
// resolves to a real holder (the engine tags every acquisition, so the
// happens-before chain through the lock always delivers a tag).
func TestCritPathSumsToWall(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	for _, strat := range []costmodel.Strategy{costmodel.CacheInvalidate, costmodel.UpdateCacheAVM} {
		t.Run(fmt.Sprintf("%v", strat), func(t *testing.T) {
			cfg := testConfig(strat, costmodel.Model1, 90210, 32, 48)
			cfg.Ledger = cache.NewLedger()
			e := New(cfg, Options{Clients: 8, CritPath: true})

			// Organic collisions are scheduler-dependent (on one CPU,
			// sub-millisecond ops essentially never overlap), so force
			// contention deterministically: hold r1 exclusively — every
			// op's footprint includes it — while the sessions start, so
			// each session's first op incurs a real, blamed wait.
			var holdout Footprint
			holdout.Exclusive(RelLock("r1"))
			h := e.locks.AcquireAs(holdout, 99, "test holdout")
			done := make(chan Result, 1)
			go func() { done <- e.Run(context.Background()) }()
			time.Sleep(20 * time.Millisecond)
			h.Release()
			res := <-done

			if len(res.CritPaths) != res.Ops {
				t.Fatalf("%d crit paths for %d ops", len(res.CritPaths), res.Ops)
			}
			waited := false
			for _, cp := range res.CritPaths {
				if sum := cp.WaitNs + cp.IONs + cp.RecomputeNs + cp.ComputeNs; sum != cp.WallNs {
					t.Fatalf("seq %d: segments sum to %d, wall %d", cp.Seq, sum, cp.WallNs)
				}
				if cp.ComputeNs < 0 {
					t.Fatalf("seq %d: negative compute %d (wait %d, io %d, recompute %d, wall %d)",
						cp.Seq, cp.ComputeNs, cp.WaitNs, cp.IONs, cp.RecomputeNs, cp.WallNs)
				}
				if cp.WaitNs < 0 || cp.IONs < 0 || cp.RecomputeNs < 0 {
					t.Fatalf("seq %d: negative segment %+v", cp.Seq, cp)
				}
				var blameNs int64
				for _, b := range cp.Blame {
					if b.HolderSession < 0 || b.HolderOp == "" || b.HolderOp == "unknown" {
						t.Fatalf("seq %d: unresolved blame edge %+v", cp.Seq, b)
					}
					if b.Lock == "" {
						t.Fatalf("seq %d: blame edge without a lock name", cp.Seq)
					}
					blameNs += b.WaitNs
					waited = true
				}
				if blameNs != cp.WaitNs {
					t.Fatalf("seq %d: blame edges sum to %dns, wait segment %dns", cp.Seq, blameNs, cp.WaitNs)
				}
			}
			if !waited {
				t.Fatal("run produced no lock waits despite the holdout; property vacuous")
			}
			if len(res.TopBlockers) == 0 {
				t.Fatal("waits occurred but TopBlockers is empty")
			}
			blamedHoldout := false
			for _, b := range res.TopBlockers {
				if b.Waits <= 0 || b.WaitNs <= 0 || b.HolderOp == "" {
					t.Fatalf("malformed blocker stat %+v", b)
				}
				if b.HolderSession == 99 && b.HolderOp == "test holdout" {
					blamedHoldout = true
				}
			}
			if !blamedHoldout {
				t.Fatalf("holdout session missing from blockers: %+v", res.TopBlockers)
			}
		})
	}
}

// TestDiagnosisPreservesSequentialIdentity is the no-observer-effect
// gate for the whole diagnosis layer: one client with critical-path
// profiling AND the cache-efficacy ledger enabled must still reproduce
// the bare sequential simulator's cost counters exactly, and two
// identical runs must serialize byte-identical ledgers.
func TestDiagnosisPreservesSequentialIdentity(t *testing.T) {
	defer dbtest.Watchdog(t, 4*time.Minute)()
	for _, strat := range allStrategies {
		for _, model := range []costmodel.Model{costmodel.Model1, costmodel.Model2} {
			t.Run(fmt.Sprintf("%v/%v", strat, model), func(t *testing.T) {
				cfg := testConfig(strat, model, 41, 15, 25)
				seq := sim.Run(cfg)

				ledgerBytes := func() []byte {
					lcfg := cfg
					lcfg.Ledger = cache.NewLedger()
					e := New(lcfg, Options{Clients: 1, CritPath: true})
					res := e.Run(context.Background())
					if res.Counters != seq.Counters {
						t.Fatalf("diagnosis perturbed counters:\n engine     %v\n sequential %v",
							res.Counters, seq.Counters)
					}
					if res.SimTotalMs != seq.TotalMs {
						t.Fatalf("simulated cost %v, sequential %v", res.SimTotalMs, seq.TotalMs)
					}
					var buf bytes.Buffer
					meta := cache.LedgerMeta{
						Strategy: lcfg.Strategy.String(), Model: int(model), Clients: 1,
						Seed: lcfg.Seed, Queries: res.Queries, Updates: res.Updates,
						TotalMs: res.SimTotalMs,
					}
					if err := cache.WriteLedger(&buf, meta, lcfg.Ledger); err != nil {
						t.Fatal(err)
					}
					return buf.Bytes()
				}

				a, b := ledgerBytes(), ledgerBytes()
				if !bytes.Equal(a, b) {
					t.Fatalf("ledger serialization not deterministic:\n--- run A\n%s\n--- run B\n%s", a, b)
				}
			})
		}
	}
}
