package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dbproc/internal/costmodel"
	"dbproc/internal/dbtest"
)

// corpusFile is the on-disk form of a seeded snapshot-isolation history
// in testdata/writeskew.
type corpusFile struct {
	Name            string `json:"name"`
	Description     string `json:"description"`
	ExpectWriteSkew bool   `json:"expect_write_skew"`
	Txns            []Txn  `json:"txns"`
}

func loadCorpus(t *testing.T) []corpusFile {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "writeskew", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("write-skew corpus missing: %v (%d files)", err, len(paths))
	}
	var out []corpusFile
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		var c corpusFile
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		out = append(out, c)
	}
	return out
}

// TestSIOracleCorpus: the SI-aware oracle must flag every anomalous
// corpus history and accept the controls, while the commit-order check —
// the pre-MVCC oracle semantics — accepts all of them, demonstrating the
// class of anomaly only the antidependency analysis catches.
func TestSIOracleCorpus(t *testing.T) {
	for _, c := range loadCorpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			old := CheckCommitOrder(c.Txns)
			if !old.Serializable {
				t.Fatalf("commit-order check must accept every corpus history, rejected %s: %s", c.Name, old.Window)
			}
			si := CheckSnapshotIsolation(c.Txns)
			if si.Serializable == c.ExpectWriteSkew {
				t.Fatalf("SI oracle on %s: serializable=%v, want flagged=%v", c.Name, si.Serializable, c.ExpectWriteSkew)
			}
			if c.ExpectWriteSkew {
				if si.Window == "" || len(si.Cycle) == 0 {
					t.Fatalf("flagged history %s has no window report", c.Name)
				}
				byID := map[int]Txn{}
				for _, tx := range c.Txns {
					byID[tx.ID] = tx
				}
				for _, id := range si.Cycle {
					want := fmt.Sprintf("session %d", byID[id].Session)
					if !strings.Contains(si.Window, want) {
						t.Fatalf("window for %s does not name %s:\n%s", c.Name, want, si.Window)
					}
				}
			}
		})
	}
}

// TestSIOracleMinimalWindow: with a skew pair buried among benign
// transactions, the report must blame exactly the guilty pair — a
// 2-cycle naming both sessions — not any bystander.
func TestSIOracleMinimalWindow(t *testing.T) {
	for _, c := range loadCorpus(t) {
		if c.Name != "skew_in_crowd" {
			continue
		}
		rep := CheckSnapshotIsolation(c.Txns)
		if rep.Serializable {
			t.Fatal("skew_in_crowd not flagged")
		}
		if len(rep.Cycle) != 2 {
			t.Fatalf("want minimal 2-cycle, got %v", rep.Cycle)
		}
		got := map[int]bool{rep.Cycle[0]: true, rep.Cycle[1]: true}
		if !got[4] || !got[6] {
			t.Fatalf("want cycle {4,6}, got %v", rep.Cycle)
		}
		for _, frag := range []string{"session 3", "session 5", "write skew"} {
			if !strings.Contains(rep.Window, frag) {
				t.Fatalf("window missing %q:\n%s", frag, rep.Window)
			}
		}
		return
	}
	t.Fatal("skew_in_crowd.json missing from corpus")
}

// TestSIOracleSeeded: seeded random histories — a serial read-modify-
// write chain with read-only queries sprinkled in — stay clean, and stay
// flagged once a write-skew pair is planted at a random overlap point.
func TestSIOracleSeeded(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		txns := seededHistory(rng, false)
		if rep := CheckSnapshotIsolation(txns); !rep.Serializable {
			t.Fatalf("seed %d: clean history flagged: %s", seed, rep.Window)
		}
		rng = rand.New(rand.NewSource(seed))
		txns = seededHistory(rng, true)
		rep := CheckSnapshotIsolation(txns)
		if rep.Serializable {
			t.Fatalf("seed %d: planted write skew not flagged", seed)
		}
		if old := CheckCommitOrder(txns); !old.Serializable {
			t.Fatalf("seed %d: commit-order check should miss the planted skew", seed)
		}
	}
}

// seededHistory builds a history of serial updates on "base" plus
// read-only queries; withSkew plants a concurrent pair on private items.
func seededHistory(rng *rand.Rand, withSkew bool) []Txn {
	n := 4 + rng.Intn(8)
	var txns []Txn
	id := 0
	for i := 0; i < n; i++ {
		// Update i: reads and rewrites base at stamps [i, i+1].
		txns = append(txns, Txn{
			ID: id, Session: rng.Intn(4), Start: uint64(i), Commit: uint64(i + 1),
			Reads: []string{"base"}, Writes: []string{"base"},
		})
		id++
		if rng.Intn(2) == 0 {
			// A read-only query at a snapshot no later than the frontier.
			s := uint64(rng.Intn(i + 1))
			txns = append(txns, Txn{
				ID: id, Session: 4 + rng.Intn(4), Start: s, Commit: s,
				Reads: []string{"base"},
			})
			id++
		}
	}
	if withSkew {
		at := uint64(rng.Intn(n))
		txns = append(txns,
			Txn{ID: id, Session: 8, Start: at, Commit: at + 1,
				Reads: []string{"skew_a", "skew_b"}, Writes: []string{"skew_a"}},
			Txn{ID: id + 1, Session: 9, Start: at, Commit: at + 2,
				Reads: []string{"skew_a", "skew_b"}, Writes: []string{"skew_b"}},
		)
	}
	rng.Shuffle(len(txns), func(i, j int) { txns[i], txns[j] = txns[j], txns[i] })
	return txns
}

// TestTxnsFromHistoryCleanRun: a real multi-client MVCC run, lifted to
// transaction form, is serializable under the SI oracle — queries are
// read-only and updates totally ordered, so no antidependency cycle can
// form. This is the soak test's per-run assertion.
func TestTxnsFromHistoryCleanRun(t *testing.T) {
	defer dbtest.Watchdog(t, 2*time.Minute)()
	for _, strat := range allStrategies {
		cfg := testConfig(strat, costmodel.Model2, 77, 20, 30)
		e := New(cfg, Options{Clients: 4, RecordHistory: true})
		res := e.Run(context.Background())
		txns := TxnsFromHistory(res.History, e.World().ProcIDs(), e.World().ProcRelations)
		if len(txns) != res.Ops {
			t.Fatalf("%v: lifted %d txns from %d ops", strat, len(txns), res.Ops)
		}
		if rep := CheckSnapshotIsolation(txns); !rep.Serializable {
			t.Fatalf("%v: real run flagged by SI oracle: %s", strat, rep.Window)
		}
	}
}
