package workload

import (
	"testing"
	"time"
)

// TestArrivalsReplayable: the open-loop arrival schedule is a pure
// function of (seed, rate) — two processes with the same parameters draw
// identical instants, and a different seed diverges.
func TestArrivalsReplayable(t *testing.T) {
	a := NewArrivals(99, 500)
	b := NewArrivals(99, 500)
	c := NewArrivals(100, 500)
	diverged := false
	for i := 0; i < 200; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("arrival %d: %v vs %v from identical seeds", i, x, y)
		}
		if x != c.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds drew identical schedules")
	}
}

// TestArrivalsMonotoneAndPaced: offsets never decrease, and the mean
// inter-arrival gap tracks 1/rate within loose statistical bounds.
func TestArrivalsMonotoneAndPaced(t *testing.T) {
	const rate = 1000.0 // 1ms mean gap
	a := NewArrivals(7, rate)
	prev := time.Duration(0)
	const n = 5000
	var last time.Duration
	for i := 0; i < n; i++ {
		at := a.Next()
		if at < prev {
			t.Fatalf("arrival %d: offset %v before previous %v", i, at, prev)
		}
		prev, last = at, at
	}
	mean := last.Seconds() / n
	if mean < 0.5/rate || mean > 2.0/rate {
		t.Fatalf("mean inter-arrival gap %.6fs, want ≈ %.6fs", mean, 1/rate)
	}
}

// TestArrivalsZeroRate: a non-positive rate degenerates to immediate
// submission — every arrival at offset zero.
func TestArrivalsZeroRate(t *testing.T) {
	a := NewArrivals(1, 0)
	for i := 0; i < 10; i++ {
		if at := a.Next(); at != 0 {
			t.Fatalf("zero-rate arrival %d at %v, want 0", i, at)
		}
	}
}

// TestScenarioSeedReplayProperty: for every catalog scenario and a spread
// of seeds, the (scenario, seed) pair fully determines the run's inputs —
// the op stream, every session's closed-loop think draws, and every
// session's open-loop arrival schedule all replay identically. This is
// the property that makes contended runs comparable across reruns: only
// the interleaving may differ, never the offered load.
func TestScenarioSeedReplayProperty(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	base := Base{K: 18, Q: 30, Z: 0.3, L: 2}
	for _, sc := range Catalog() {
		for seed := int64(1); seed <= 5; seed++ {
			s1 := BuildSchedule(sc, base)
			s2 := BuildSchedule(sc, base)
			ops1, ops2 := s1.Ops(seed, ids), s2.Ops(seed, ids)
			if len(ops1) != len(ops2) {
				t.Fatalf("%s/seed %d: op counts %d vs %d", sc.Name(), seed, len(ops1), len(ops2))
			}
			for i := range ops1 {
				if ops1[i] != ops2[i] {
					t.Fatalf("%s/seed %d: op %d diverged: %+v vs %+v",
						sc.Name(), seed, i, ops1[i], ops2[i])
				}
			}
			for sess := 0; sess < 4; sess++ {
				t1 := NewThinker(seed+int64(sess), 2*s1.ThinkScale(sess))
				t2 := NewThinker(seed+int64(sess), 2*s2.ThinkScale(sess))
				a1 := NewArrivals(seed+int64(sess), 800/s1.ThinkScale(sess))
				a2 := NewArrivals(seed+int64(sess), 800/s2.ThinkScale(sess))
				for i := 0; i < 50; i++ {
					if t1.Next() != t2.Next() {
						t.Fatalf("%s/seed %d: session %d think draw %d diverged", sc.Name(), seed, sess, i)
					}
					if a1.Next() != a2.Next() {
						t.Fatalf("%s/seed %d: session %d arrival %d diverged", sc.Name(), seed, sess, i)
					}
				}
			}
		}
	}
}
