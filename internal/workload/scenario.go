// Hostile-workload scenarios. The paper only ever measures the polite
// workload — uniform k/l/q draws with 80/20 locality — but a system that
// must survive real traffic needs the opposite: flash crowds, hot-key
// storms, bulk-load bursts, adversarial invalidation, slow consumers,
// and nested procedure calls. A Scenario rewrites a Schedule — a list of
// phases, each a complete workload Profile — and the Schedule generates
// the operation stream deterministically from (scenario, seed).
//
// Two rules keep scenario runs replayable:
//
//  1. Each phase draws from its own Generator, seeded by mixing the run
//     seed with the phase index. No draw ever straddles a phase
//     boundary: changing phase P's length cannot perturb phase P+1.
//  2. Everything an op needs at execution time rides on the Op itself
//     (comparable scalars only), so the engine can deal ops to any
//     number of sessions without consulting shared scenario state.
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Profile is the complete set of workload knobs for one phase.
type Profile struct {
	// K and Q are the update- and query-op counts of the phase.
	K, Q int
	// Z is the locality skew for the phase's procedure picks.
	Z float64
	// Theta, when positive, is the probability that a query bypasses
	// the Z-skew and hits StormProc directly — the hot-key storm. At
	// Theta→1 effectively every access lands on one procedure.
	Theta     float64
	StormProc int
	// L overrides the tuples-modified-per-update count (bulk load);
	// zero keeps the configured default.
	L int
	// Adversarial marks the phase's updates as densest-band seekers.
	Adversarial bool
	// Nest and Batch configure nested procedure calls on the phase's
	// queries (see Op.Nest / Op.Batch).
	Nest  int
	Batch bool
}

// Phase is a named slice of the simulated timeline with its own Profile.
type Phase struct {
	Name string
	Profile
}

// Schedule is the fully resolved plan a Scenario produces: an ordered
// phase list plus session-level modifiers that are not per-op.
type Schedule struct {
	// Scenario is the name of the scenario that built the schedule.
	Scenario string
	Phases   []Phase
	// SlowEvery/SlowFactor mark every SlowEvery-th session (1-based:
	// sessions s with s%SlowEvery == SlowEvery−1) as a slow consumer
	// whose mean think time is multiplied by SlowFactor.
	SlowEvery  int
	SlowFactor float64
	// BaseL is the configured default tuples-per-update, recorded so
	// scenarios can express bursts as multiples of it.
	BaseL int
}

// Base carries the polite-workload parameters a Schedule starts from.
type Base struct {
	K, Q int
	Z    float64
	L    int
}

// Scenario rewrites a Schedule in place. Scenarios compose: a
// phase-splitting scenario (flash crowd, storm, bulk load) carves the
// final phase into sub-phases, while a modifier scenario (adversarial
// invalidation, slow consumers, nested calls) rewrites every phase, so
// stacking order reads left to right.
type Scenario interface {
	Name() string
	Apply(*Schedule)
}

// BuildSchedule resolves a scenario against base parameters. A nil
// scenario yields the polite single-phase schedule.
func BuildSchedule(s Scenario, b Base) *Schedule {
	sch := &Schedule{
		Phases: []Phase{{Name: "steady", Profile: Profile{K: b.K, Q: b.Q, Z: ClampZ(b.Z)}}},
		BaseL:  b.L,
	}
	if s != nil {
		sch.Scenario = s.Name()
		s.Apply(sch)
	}
	return sch
}

// splitPhase carves the schedule's final phase into len(fracs) pieces
// whose K/Q counts are proportional to fracs (which must sum to ~1).
// Each piece inherits the parent profile; callers then specialise the
// pieces. Rounding slack lands on the last piece so totals are exact.
func (s *Schedule) splitPhase(names []string, fracs []float64) []*Phase {
	last := s.Phases[len(s.Phases)-1]
	s.Phases = s.Phases[:len(s.Phases)-1]
	start := len(s.Phases)
	k, q := 0, 0
	for i := range fracs {
		p := Phase{Name: names[i], Profile: last.Profile}
		if i == len(fracs)-1 {
			p.K, p.Q = last.K-k, last.Q-q
		} else {
			p.K = int(float64(last.K)*fracs[i] + 0.5)
			p.Q = int(float64(last.Q)*fracs[i] + 0.5)
			k += p.K
			q += p.Q
		}
		s.Phases = append(s.Phases, p)
	}
	out := make([]*Phase, len(fracs))
	for i := range out {
		out[i] = &s.Phases[start+i]
	}
	return out
}

// FlashCrowd spikes the query rate: a pre phase, then a crowd window
// holding the given fraction of the timeline but Spike× the query
// density, then a post phase. With Spike=100 and Window=0.05 the crowd
// window carries ~84% of all queries in 5% of the timeline.
type FlashCrowd struct {
	Spike  float64 // query-density multiplier inside the window
	Window float64 // fraction of the timeline the crowd occupies
}

// Name implements Scenario.
func (f FlashCrowd) Name() string { return "flash-crowd" }

// Apply implements Scenario.
func (f FlashCrowd) Apply(s *Schedule) {
	spike, win := f.Spike, f.Window
	if spike <= 1 {
		spike = 100
	}
	if win <= 0 || win >= 1 {
		win = 0.05
	}
	// Queries redistribute by density: the window gets weight spike·win
	// of the total, the calm remainder 1−win shared evenly pre/post.
	wCrowd := spike * win / (spike*win + (1 - win))
	wCalm := (1 - wCrowd) / 2
	ph := s.splitPhase(
		[]string{"pre", "crowd", "post"},
		[]float64{(1 - win) / 2, win, (1 - win) / 2},
	)
	total := ph[0].Q + ph[1].Q + ph[2].Q
	ph[0].Q = int(float64(total)*wCalm + 0.5)
	ph[1].Q = int(float64(total)*wCrowd + 0.5)
	ph[2].Q = total - ph[0].Q - ph[1].Q
}

// HotKeyStorm concentrates queries on a single procedure: a calm phase,
// then a storm where each query hits StormProc with probability Theta.
type HotKeyStorm struct {
	Theta     float64 // concentration inside the storm; default 0.95
	StormProc int     // index into the procedure id list
	Window    float64 // fraction of the timeline under storm; default 0.5
}

// Name implements Scenario.
func (h HotKeyStorm) Name() string { return "hot-key-storm" }

// Apply implements Scenario.
func (h HotKeyStorm) Apply(s *Schedule) {
	theta, win := h.Theta, h.Window
	if theta <= 0 || theta > 1 {
		theta = 0.95
	}
	if win <= 0 || win >= 1 {
		win = 0.5
	}
	ph := s.splitPhase([]string{"calm", "storm"}, []float64{1 - win, win})
	ph[1].Theta = theta
	ph[1].StormProc = h.StormProc
}

// BulkLoad turns the tail of the timeline into a burst of huge updates:
// each burst update modifies Factor× the base L tuples.
type BulkLoad struct {
	Factor int     // L multiplier in the burst; default 16
	Window float64 // fraction of the timeline under burst; default 0.25
}

// Name implements Scenario.
func (b BulkLoad) Name() string { return "bulk-load" }

// Apply implements Scenario.
func (b BulkLoad) Apply(s *Schedule) {
	factor, win := b.Factor, b.Window
	if factor <= 1 {
		factor = 16
	}
	if win <= 0 || win >= 1 {
		win = 0.25
	}
	ph := s.splitPhase([]string{"steady", "burst"}, []float64{1 - win, win})
	ph[1].L = s.BaseL * factor
	if ph[1].L < 1 {
		ph[1].L = factor
	}
}

// AdversarialInvalidation marks every update as a densest-band seeker:
// the executor aims its footprint at the key range covered by the most
// procedure interval locks, maximizing invalidations per update.
type AdversarialInvalidation struct{}

// Name implements Scenario.
func (AdversarialInvalidation) Name() string { return "adversarial-inval" }

// Apply implements Scenario.
func (AdversarialInvalidation) Apply(s *Schedule) {
	for i := range s.Phases {
		s.Phases[i].Adversarial = true
	}
}

// SlowConsumers marks every Every-th session as a think-time outlier
// with Factor× the mean think time — the stragglers that stretch the
// closed-loop tail.
type SlowConsumers struct {
	Every  int     // default 4
	Factor float64 // default 32
}

// Name implements Scenario.
func (SlowConsumers) Name() string { return "slow-consumers" }

// Apply implements Scenario.
func (c SlowConsumers) Apply(s *Schedule) {
	every, factor := c.Every, c.Factor
	if every < 2 {
		every = 4
	}
	if factor <= 1 {
		factor = 32
	}
	s.SlowEvery = every
	s.SlowFactor = factor
}

// NestedCalls makes every query a nested procedure call with Depth
// inner accesses; Batch dedupes the inner calls (the decorrelated,
// set-oriented execution of Guravannavar's rewriting).
type NestedCalls struct {
	Depth int // default 3
	Batch bool
}

// Name implements Scenario.
func (n NestedCalls) Name() string {
	if n.Batch {
		return "nested-batched"
	}
	return "nested-naive"
}

// Apply implements Scenario.
func (n NestedCalls) Apply(s *Schedule) {
	depth := n.Depth
	if depth < 1 {
		depth = 3
	}
	for i := range s.Phases {
		s.Phases[i].Nest = depth
		s.Phases[i].Batch = n.Batch
	}
}

// stack composes scenarios left to right under a single name.
type stack struct {
	name  string
	parts []Scenario
}

// Stack composes scenarios: each part's Apply runs in order against the
// same schedule, so phase-splitters should come before modifiers.
func Stack(name string, parts ...Scenario) Scenario { return stack{name: name, parts: parts} }

func (s stack) Name() string { return s.name }

func (s stack) Apply(sch *Schedule) {
	for _, p := range s.parts {
		p.Apply(sch)
	}
}

// Catalog returns the named hostile scenarios the bench sweeps, in
// canonical order.
func Catalog() []Scenario {
	return []Scenario{
		FlashCrowd{},
		HotKeyStorm{},
		BulkLoad{},
		AdversarialInvalidation{},
		SlowConsumers{},
		NestedCalls{},
		NestedCalls{Batch: true},
		Stack("storm-adversarial", HotKeyStorm{}, AdversarialInvalidation{}),
	}
}

// ByName resolves a catalog scenario by its Name.
func ByName(name string) (Scenario, bool) {
	for _, s := range Catalog() {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// Names returns the catalog scenario names in canonical order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, s := range cat {
		out[i] = s.Name()
	}
	return out
}

// splitmix64 is the seed mixer: cheap, stateless, and good enough to
// decorrelate per-phase and per-op derived streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func phaseSeed(seed int64, phase int) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(uint64(phase)+0x5ca1ab1e)))
}

// Ops generates the schedule's full operation stream. Each phase owns a
// Generator seeded from (seed, phase index): draws are deterministic per
// phase and never straddle a boundary. Ops are shuffled within their
// phase only — a flash crowd stays a contiguous window — and Index is
// assigned over the concatenated stream.
func (s *Schedule) Ops(seed int64, procIDs []int) []Op {
	var ops []Op
	for pi, ph := range s.Phases {
		g := New(phaseSeed(seed, pi), ph.Z, procIDs)
		phase := make([]Op, 0, ph.K+ph.Q)
		for i := 0; i < ph.K; i++ {
			phase = append(phase, Op{
				Kind:        Update,
				Phase:       pi,
				L:           ph.L,
				Adversarial: ph.Adversarial,
			})
		}
		for i := 0; i < ph.Q; i++ {
			op := Op{Kind: Query, Phase: pi}
			if ph.Theta > 0 && g.Float64() < ph.Theta {
				op.ProcID = procIDs[ph.StormProc%len(procIDs)]
			} else {
				op.ProcID = g.PickProc()
			}
			if ph.Nest > 0 {
				op.Nest = ph.Nest
				op.Batch = ph.Batch
				op.NestSeed = int64(splitmix64(uint64(g.Intn(1 << 30))))
			}
			phase = append(phase, op)
		}
		g.rng.Shuffle(len(phase), func(i, j int) { phase[i], phase[j] = phase[j], phase[i] })
		ops = append(ops, phase...)
	}
	for i := range ops {
		ops[i].Index = i
	}
	return ops
}

// ThinkScale returns the think-time multiplier for a session index —
// SlowFactor for slow-consumer sessions, 1 otherwise.
func (s *Schedule) ThinkScale(session int) float64 {
	if s == nil || s.SlowEvery < 2 || s.SlowFactor <= 1 {
		return 1
	}
	if session%s.SlowEvery == s.SlowEvery-1 {
		return s.SlowFactor
	}
	return 1
}

// TotalOps returns the scheduled op count (for sizing checks).
func (s *Schedule) TotalOps() (k, q int) {
	for _, ph := range s.Phases {
		k += ph.K
		q += ph.Q
	}
	return k, q
}

// InnerProcs derives the inner procedure accesses of a nested query,
// deterministically from the op itself — no shared state, so any
// session can expand the op identically. Batch mode dedupes and sorts
// (the decorrelated set-oriented plan); naive mode keeps every call in
// draw order, duplicates included.
func InnerProcs(op Op, procIDs []int) []int {
	if op.Kind != Query || op.Nest <= 0 || len(procIDs) == 0 {
		return nil
	}
	out := make([]int, 0, op.Nest)
	h := splitmix64(uint64(op.NestSeed) ^ splitmix64(uint64(op.ProcID)+0x0ddba11))
	for i := 0; i < op.Nest; i++ {
		h = splitmix64(h)
		out = append(out, procIDs[h%uint64(len(procIDs))])
	}
	if op.Batch {
		sort.Ints(out)
		j := 0
		for i, v := range out {
			if i == 0 || v != out[j-1] {
				out[j] = v
				j++
			}
		}
		out = out[:j]
	}
	return out
}

// Describe renders a one-line summary of the schedule for logs/tests.
func (s *Schedule) Describe() string {
	var b strings.Builder
	if s.Scenario != "" {
		fmt.Fprintf(&b, "%s: ", s.Scenario)
	}
	for i, ph := range s.Phases {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s k=%d q=%d z=%.2f", ph.Name, ph.K, ph.Q, ph.Z)
		if ph.Theta > 0 {
			fmt.Fprintf(&b, " θ=%.2f→p%d", ph.Theta, ph.StormProc)
		}
		if ph.L > 0 {
			fmt.Fprintf(&b, " l=%d", ph.L)
		}
		if ph.Adversarial {
			b.WriteString(" adversarial")
		}
		if ph.Nest > 0 {
			fmt.Fprintf(&b, " nest=%d", ph.Nest)
			if ph.Batch {
				b.WriteString(" batched")
			}
		}
	}
	if s.SlowEvery >= 2 {
		fmt.Fprintf(&b, " | slow every %d ×%.0f", s.SlowEvery, s.SlowFactor)
	}
	return b.String()
}
