package workload

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestCatalogNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Catalog() {
		name := s.Name()
		if seen[name] {
			t.Fatalf("duplicate scenario name %q", name)
		}
		seen[name] = true
		got, ok := ByName(name)
		if !ok || got.Name() != name {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Fatal("ByName resolved a bogus name")
	}
	if got := len(Names()); got != len(Catalog()) {
		t.Fatalf("Names() has %d entries, catalog %d", got, len(Catalog()))
	}
}

// stripIndex zeroes the position-dependent field so op streams can be
// compared across schedules whose earlier phases differ in length.
func stripIndex(ops []Op) []Op {
	out := append([]Op(nil), ops...)
	for i := range out {
		out[i].Index = 0
	}
	return out
}

func phaseOps(ops []Op, phase int) []Op {
	var out []Op
	for _, op := range ops {
		if op.Phase == phase {
			out = append(out, op)
		}
	}
	return stripIndex(out)
}

// checkSchedule verifies the standing scenario invariants on one
// schedule and returns a description of the first violation.
func checkSchedule(sch *Schedule, seed int64, procs []int) error {
	ops := sch.Ops(seed, procs)
	again := sch.Ops(seed, procs)
	if !reflect.DeepEqual(ops, again) {
		return fmt.Errorf("ops not deterministic for seed %d", seed)
	}
	// Totals: generation must realize exactly the scheduled counts.
	wantK, wantQ := sch.TotalOps()
	var k, q int
	for i, op := range ops {
		if op.Index != i {
			return fmt.Errorf("op %d has Index %d", i, op.Index)
		}
		if op.Kind == Update {
			k++
		} else {
			q++
		}
	}
	if k != wantK || q != wantQ {
		return fmt.Errorf("generated k=%d q=%d, scheduled k=%d q=%d", k, q, wantK, wantQ)
	}
	// Phase contiguity: the stream visits phases in order; the
	// within-phase shuffle must not leak ops across a boundary.
	last := 0
	for i, op := range ops {
		if op.Phase < last {
			return fmt.Errorf("op %d in phase %d after phase %d — draw straddles a boundary", i, op.Phase, last)
		}
		last = op.Phase
	}
	// Boundary independence: resizing phase 0 must not perturb any
	// later phase's draws (each phase owns its seeded generator).
	if len(sch.Phases) > 1 && (sch.Phases[0].K > 0 || sch.Phases[0].Q > 0) {
		alt := *sch
		alt.Phases = append([]Phase(nil), sch.Phases...)
		alt.Phases[0].K = sch.Phases[0].K / 2
		alt.Phases[0].Q = sch.Phases[0].Q/2 + 1
		altOps := alt.Ops(seed, procs)
		for pi := 1; pi < len(sch.Phases); pi++ {
			if !reflect.DeepEqual(phaseOps(ops, pi), phaseOps(altOps, pi)) {
				return fmt.Errorf("phase %d draws changed when phase 0 was resized", pi)
			}
		}
	}
	return nil
}

func TestCatalogSchedulesHoldInvariants(t *testing.T) {
	base := Base{K: 40, Q: 120, Z: 0.2, L: 5}
	procs := ids(12)
	for _, sc := range Catalog() {
		sch := BuildSchedule(sc, base)
		for seed := int64(1); seed <= 3; seed++ {
			if err := checkSchedule(sch, seed, procs); err != nil {
				t.Errorf("%s seed %d: %v\n  schedule: %s", sc.Name(), seed, err, sch.Describe())
			}
		}
	}
	// The polite schedule holds them too.
	if err := checkSchedule(BuildSchedule(nil, base), 1, procs); err != nil {
		t.Errorf("polite: %v", err)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	sch := BuildSchedule(HotKeyStorm{}, Base{K: 30, Q: 90, Z: 0.2, L: 5})
	a := sch.Ops(1, ids(10))
	b := sch.Ops(2, ids(10))
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 produced identical scenario streams")
	}
}

// TestScenarioCompositionProperty is the quick-style sweep: random
// stacks over random bases must hold every invariant. On violation the
// stack is shrunk to a minimal failing scenario before reporting.
func TestScenarioCompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	parts := []Scenario{
		FlashCrowd{}, HotKeyStorm{}, BulkLoad{},
		AdversarialInvalidation{}, SlowConsumers{}, NestedCalls{},
		NestedCalls{Batch: true},
		FlashCrowd{Spike: 10, Window: 0.2}, HotKeyStorm{Theta: 0.99, StormProc: 3},
		BulkLoad{Factor: 40, Window: 0.1},
	}
	for trial := 0; trial < 60; trial++ {
		base := Base{
			K: rng.Intn(60),
			Q: 1 + rng.Intn(200),
			Z: rng.Float64(), // may be degenerate after clamping — fine
			L: 1 + rng.Intn(20),
		}
		n := 1 + rng.Intn(4)
		stacked := make([]Scenario, 0, n)
		for i := 0; i < n; i++ {
			stacked = append(stacked, parts[rng.Intn(len(parts))])
		}
		sc := Stack("trial", stacked...)
		seed := int64(rng.Intn(1000))
		procs := ids(2 + rng.Intn(30))
		if err := check(sc, base, seed, procs); err != nil {
			min := shrink(sc.(stack), base, seed, procs)
			t.Fatalf("trial %d: %v\n  minimal failing scenario: %s\n  schedule: %s\n  base: %+v seed=%d procs=%d",
				trial, err, names(min.parts), BuildSchedule(min, base).Describe(), base, seed, len(procs))
		}
	}
}

func check(sc Scenario, base Base, seed int64, procs []int) error {
	return checkSchedule(BuildSchedule(sc, base), seed, procs)
}

// shrink removes stack parts one at a time while the failure persists,
// yielding a minimal failing composition for the report.
func shrink(sc stack, base Base, seed int64, procs []int) stack {
	for i := 0; i < len(sc.parts); {
		cand := stack{name: sc.name, parts: append(append([]Scenario(nil), sc.parts[:i]...), sc.parts[i+1:]...)}
		if check(cand, base, seed, procs) != nil {
			sc = cand
			i = 0
			continue
		}
		i++
	}
	return sc
}

func names(parts []Scenario) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += " + "
		}
		s += p.Name()
	}
	return s
}

func TestFlashCrowdConcentratesQueries(t *testing.T) {
	sch := BuildSchedule(FlashCrowd{}, Base{K: 20, Q: 1000, Z: 0.2, L: 5})
	if len(sch.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(sch.Phases))
	}
	crowd := sch.Phases[1]
	if crowd.Name != "crowd" {
		t.Fatalf("middle phase %q", crowd.Name)
	}
	total := sch.Phases[0].Q + crowd.Q + sch.Phases[2].Q
	if total != 1000 {
		t.Fatalf("query total %d, want 1000", total)
	}
	if frac := float64(crowd.Q) / float64(total); frac < 0.7 {
		t.Fatalf("crowd carries only %.2f of queries, want the bulk", frac)
	}
}

func TestHotKeyStormHitsStormProc(t *testing.T) {
	sch := BuildSchedule(HotKeyStorm{Theta: 0.95, StormProc: 4}, Base{K: 0, Q: 2000, Z: 0.2, L: 5})
	ops := sch.Ops(5, ids(10))
	stormHits, stormTotal := 0, 0
	for _, op := range ops {
		if op.Phase != 1 {
			continue
		}
		stormTotal++
		if op.ProcID == 4 {
			stormHits++
		}
	}
	if stormTotal == 0 {
		t.Fatal("no storm-phase queries")
	}
	if frac := float64(stormHits) / float64(stormTotal); frac < 0.9 {
		t.Fatalf("storm proc got %.2f of storm queries, want ≥0.9", frac)
	}
}

func TestBulkLoadOverridesL(t *testing.T) {
	sch := BuildSchedule(BulkLoad{Factor: 16}, Base{K: 100, Q: 10, Z: 0.2, L: 5})
	ops := sch.Ops(1, ids(10))
	burst := 0
	for _, op := range ops {
		if op.Kind != Update {
			continue
		}
		switch op.Phase {
		case 0:
			if op.L != 0 {
				t.Fatalf("steady update carries L=%d", op.L)
			}
		case 1:
			if op.L != 80 {
				t.Fatalf("burst update L=%d, want 80", op.L)
			}
			burst++
		}
	}
	if burst == 0 {
		t.Fatal("no burst updates generated")
	}
}

func TestAdversarialMarksUpdates(t *testing.T) {
	sch := BuildSchedule(AdversarialInvalidation{}, Base{K: 50, Q: 50, Z: 0.2, L: 5})
	for _, op := range sch.Ops(1, ids(10)) {
		if op.Kind == Update && !op.Adversarial {
			t.Fatal("update not marked adversarial")
		}
		if op.Kind == Query && op.Adversarial {
			t.Fatal("query marked adversarial")
		}
	}
}

func TestInnerProcs(t *testing.T) {
	procs := ids(7)
	sch := BuildSchedule(NestedCalls{Depth: 5}, Base{K: 0, Q: 50, Z: 0.2, L: 5})
	ops := sch.Ops(3, procs)
	for _, op := range ops {
		inner := InnerProcs(op, procs)
		if len(inner) != 5 {
			t.Fatalf("naive nest expanded to %d inner calls, want 5", len(inner))
		}
		if !reflect.DeepEqual(inner, InnerProcs(op, procs)) {
			t.Fatal("inner expansion not deterministic")
		}
		for _, id := range inner {
			if id < 0 || id >= 7 {
				t.Fatalf("inner proc %d out of range", id)
			}
		}
	}
	// Batched mode dedupes and sorts.
	bsch := BuildSchedule(NestedCalls{Depth: 5, Batch: true}, Base{K: 0, Q: 50, Z: 0.2, L: 5})
	for _, op := range bsch.Ops(3, procs) {
		inner := InnerProcs(op, procs)
		if len(inner) == 0 || len(inner) > 5 {
			t.Fatalf("batched nest expanded to %d inner calls", len(inner))
		}
		for i := 1; i < len(inner); i++ {
			if inner[i] <= inner[i-1] {
				t.Fatalf("batched inner calls not strictly sorted: %v", inner)
			}
		}
	}
	// Non-nested ops expand to nothing.
	if InnerProcs(Op{Kind: Query}, procs) != nil {
		t.Fatal("plain query expanded inner calls")
	}
	if InnerProcs(Op{Kind: Update, Nest: 3}, procs) != nil {
		t.Fatal("update expanded inner calls")
	}
}

func TestThinkScale(t *testing.T) {
	sch := BuildSchedule(SlowConsumers{Every: 4, Factor: 32}, Base{K: 1, Q: 1, Z: 0.2, L: 1})
	want := map[int]float64{0: 1, 1: 1, 2: 1, 3: 32, 4: 1, 7: 32, 11: 32}
	for s, w := range want {
		if got := sch.ThinkScale(s); got != w {
			t.Errorf("ThinkScale(%d) = %v, want %v", s, got, w)
		}
	}
	polite := BuildSchedule(nil, Base{K: 1, Q: 1, Z: 0.2, L: 1})
	if polite.ThinkScale(3) != 1 {
		t.Error("polite schedule scaled think time")
	}
	var nilSch *Schedule
	if nilSch.ThinkScale(3) != 1 {
		t.Error("nil schedule scaled think time")
	}
}

func TestStackOrderMatters(t *testing.T) {
	// storm-adversarial: the storm splits phases first, then the
	// adversarial modifier marks every phase including the storm.
	sch := BuildSchedule(Stack("x", HotKeyStorm{}, AdversarialInvalidation{}), Base{K: 40, Q: 40, Z: 0.2, L: 5})
	if len(sch.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(sch.Phases))
	}
	for i, ph := range sch.Phases {
		if !ph.Adversarial {
			t.Fatalf("phase %d not adversarial", i)
		}
	}
	if sch.Phases[1].Theta == 0 {
		t.Fatal("storm phase lost its theta")
	}
}
