// Package workload generates the paper's operation stream: k update
// transactions (each modifying l tuples of R1 in place) interleaved at
// random with q procedure accesses, where accesses exhibit the paper's
// locality-of-reference skew — a fraction Z of the procedures receives a
// fraction 1−Z of all references.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind distinguishes the two operation types.
type Kind int

// Operation kinds.
const (
	Query Kind = iota
	Update
)

// Op is one workload operation. Updates carry no payload here; the
// simulator picks the l tuples to modify when the operation executes.
//
// Op is a comparable value type: scenario attributes are scalars, never
// slices, so histories and replay records can compare ops directly and
// ops serialize losslessly through the wire protocol's JSON.
type Op struct {
	Kind Kind
	// ProcID is the procedure accessed; meaningful for Query ops.
	ProcID int
	// Index is the op's position in the generated sequence, assigned
	// after the interleaving shuffle. It is the stable workload-order
	// token that the cache-efficacy ledger uses to name the update that
	// invalidated an entry ("invalidated by op #17"), independent of
	// which session executed it.
	Index int

	// Phase is the index of the scenario phase that generated the op;
	// zero for the polite (scenario-free) workload.
	Phase int
	// L overrides the per-update modified-tuple count for this op (the
	// bulk-load scenario); zero keeps the configured L.
	L int
	// Adversarial marks an update whose footprint is chosen to hit the
	// densest i-lock region instead of being drawn uniformly.
	Adversarial bool
	// Nest makes a query a nested procedure call: after the outer
	// access, the executor performs Nest inner accesses to procedures
	// derived deterministically from NestSeed via InnerProcs. Batch
	// dedupes the inner calls (set-oriented, decorrelated execution);
	// without it every inner call runs, duplicates included.
	Nest     int
	NestSeed int64
	Batch    bool
}

// Generator produces a deterministic operation stream for a seed.
type Generator struct {
	rng  *rand.Rand
	z    float64
	hot  []int
	cold []int
}

// ZMin bounds the locality skew away from its degenerate endpoints.
// Z = 0 would mean "zero procedures get all accesses" and Z = 1 "all
// procedures get none" — both meaningless — so ClampZ folds any
// requested skew into [ZMin, 1−ZMin].
const ZMin = 0.01

// ClampZ maps an arbitrary requested skew onto the valid open interval.
// NaN (no meaningful request) becomes the neutral 0.5; anything at or
// beyond an endpoint clamps to the nearest representable skew. The
// result always satisfies ZMin <= z <= 1−ZMin.
func ClampZ(z float64) float64 {
	if z != z { // NaN
		return 0.5
	}
	if z < ZMin {
		return ZMin
	}
	if z > 1-ZMin {
		return 1 - ZMin
	}
	return z
}

// New builds a generator over the given procedure ids with locality skew
// z: ⌈z·n⌉ randomly chosen "hot" procedures receive a fraction 1−z of
// accesses. Degenerate skews are folded into (0, 1) via ClampZ; an empty
// id slice has no sensible reading and panics.
func New(seed int64, z float64, procIDs []int) *Generator {
	if len(procIDs) == 0 {
		panic("workload: no procedures")
	}
	z = ClampZ(z)
	rng := rand.New(rand.NewSource(seed))
	ids := append([]int(nil), procIDs...)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	nHot := int(z*float64(len(ids)) + 0.5)
	if nHot < 1 {
		nHot = 1
	}
	if nHot > len(ids) {
		nHot = len(ids)
	}
	return &Generator{
		rng:  rng,
		z:    z,
		hot:  ids[:nHot],
		cold: ids[nHot:],
	}
}

// PickProc draws a procedure id with the generator's locality skew.
func (g *Generator) PickProc() int {
	if len(g.cold) == 0 || g.rng.Float64() < 1-g.z {
		return g.hot[g.rng.Intn(len(g.hot))]
	}
	return g.cold[g.rng.Intn(len(g.cold))]
}

// Sequence returns a random interleaving of exactly q Query ops (each with
// a skewed procedure pick) and k Update ops.
func (g *Generator) Sequence(k, q int) []Op {
	if k < 0 || q < 0 {
		panic("workload: negative operation counts")
	}
	ops := make([]Op, 0, k+q)
	for i := 0; i < k; i++ {
		ops = append(ops, Op{Kind: Update})
	}
	for i := 0; i < q; i++ {
		ops = append(ops, Op{Kind: Query, ProcID: g.PickProc()})
	}
	g.rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	for i := range ops {
		ops[i].Index = i
	}
	return ops
}

// PickDistinct draws n distinct values from [0, limit). It panics if
// n > limit.
func (g *Generator) PickDistinct(n, limit int) []int {
	if n > limit {
		panic(fmt.Sprintf("workload: cannot pick %d distinct from %d", n, limit))
	}
	// For small n relative to limit, rejection sampling is cheap.
	out := make([]int, 0, n)
	seen := make(map[int]struct{}, n)
	for len(out) < n {
		v := g.rng.Intn(limit)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Intn exposes the generator's random stream for auxiliary draws (new
// attribute values for updated tuples).
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// Float64 draws from [0, 1), for probabilistic branches such as choosing
// the relation an update transaction targets.
func (g *Generator) Float64() float64 { return g.rng.Float64() }

// HotSet returns the hot procedure ids (for tests).
func (g *Generator) HotSet() []int { return append([]int(nil), g.hot...) }

// Thinker draws deterministic exponentially distributed think times for
// one closed-loop client session: the wall-clock pause between an
// operation completing and the session submitting its next one. Each
// session owns its own Thinker (and RNG), so the draws of one session do
// not depend on how its neighbours are scheduled.
type Thinker struct {
	rng  *rand.Rand
	mean float64 // milliseconds; <= 0 disables thinking
}

// NewThinker builds a thinker with the given mean think time in
// milliseconds. A mean of zero (or less) yields zero think time.
func NewThinker(seed int64, meanMs float64) *Thinker {
	return &Thinker{rng: rand.New(rand.NewSource(seed)), mean: meanMs}
}

// Next draws the next think time.
func (t *Thinker) Next() time.Duration {
	if t.mean <= 0 {
		return 0
	}
	return time.Duration(t.rng.ExpFloat64() * t.mean * float64(time.Millisecond))
}

// Arrivals draws a deterministic open-loop arrival schedule for one
// session: a Poisson process at a fixed rate, yielding absolute
// submission offsets measured from the start of the run. Where the
// closed-loop Thinker paces the next submission off the previous
// completion (a slow server throttles its own offered load), an
// open-loop session submits at the scheduled instant regardless of how
// long the previous operation took — lateness accumulates as queueing
// delay instead of vanishing into reduced demand, the standard open-loop
// overload semantics. The schedule is a pure function of (seed, rate),
// so two runs over the same scenario and seed replay identical arrival
// instants no matter how the contended runs themselves interleave.
type Arrivals struct {
	rng   *rand.Rand
	gapMs float64 // mean inter-arrival gap in ms; <= 0 → every arrival at t=0
	at    time.Duration
}

// NewArrivals builds an arrival process submitting ratePerSec operations
// per second on average. A non-positive rate degenerates to "submit
// immediately" (every arrival at offset zero).
func NewArrivals(seed int64, ratePerSec float64) *Arrivals {
	a := &Arrivals{rng: rand.New(rand.NewSource(seed))}
	if ratePerSec > 0 {
		a.gapMs = 1000 / ratePerSec
	}
	return a
}

// Next returns the absolute offset from run start at which the next
// operation is due. Successive offsets are nondecreasing.
func (a *Arrivals) Next() time.Duration {
	if a.gapMs <= 0 {
		return a.at
	}
	a.at += time.Duration(a.rng.ExpFloat64() * a.gapMs * float64(time.Millisecond))
	return a.at
}
