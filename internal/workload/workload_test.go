package workload

import (
	"math"
	"testing"
)

func ids(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSequenceCounts(t *testing.T) {
	g := New(1, 0.2, ids(10))
	ops := g.Sequence(30, 70)
	if len(ops) != 100 {
		t.Fatalf("len = %d", len(ops))
	}
	var k, q int
	for _, op := range ops {
		if op.Kind == Update {
			k++
		} else {
			q++
			if op.ProcID < 0 || op.ProcID >= 10 {
				t.Fatalf("bad proc id %d", op.ProcID)
			}
		}
	}
	if k != 30 || q != 70 {
		t.Fatalf("k=%d q=%d", k, q)
	}
}

func TestSequenceDeterministic(t *testing.T) {
	a := New(7, 0.2, ids(10)).Sequence(20, 20)
	b := New(7, 0.2, ids(10)).Sequence(20, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
	c := New(8, 0.2, ids(10)).Sequence(20, 20)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical sequences")
	}
}

// TestLocalitySkew: with Z = 0.2, the 20% hot procedures should receive
// about 80% of accesses.
func TestLocalitySkew(t *testing.T) {
	g := New(3, 0.2, ids(100))
	hot := map[int]bool{}
	for _, id := range g.HotSet() {
		hot[id] = true
	}
	if len(hot) != 20 {
		t.Fatalf("hot set size %d, want 20", len(hot))
	}
	const draws = 20000
	hotHits := 0
	for i := 0; i < draws; i++ {
		if hot[g.PickProc()] {
			hotHits++
		}
	}
	frac := float64(hotHits) / draws
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("hot fraction = %.3f, want ~0.80", frac)
	}
}

func TestUniformWhenZHalf(t *testing.T) {
	g := New(3, 0.5, ids(10))
	counts := map[int]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.PickProc()]++
	}
	for id, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("proc %d got fraction %.3f, want ~0.1", id, frac)
		}
	}
}

func TestPickDistinct(t *testing.T) {
	g := New(5, 0.2, ids(4))
	got := g.PickDistinct(50, 60)
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 60 {
			t.Fatalf("out of range %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(got) != 50 {
		t.Fatalf("len = %d", len(got))
	}
	// Full coverage draw.
	all := g.PickDistinct(10, 10)
	if len(all) != 10 {
		t.Fatal("full draw failed")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no procs":       func() { New(1, 0.2, nil) },
		"no procs bad Z": func() { New(1, 0, nil) },
		"negative k":     func() { New(1, 0.2, ids(5)).Sequence(-1, 2) },
		"too many picks": func() { New(1, 0.2, ids(5)).PickDistinct(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestClampZ: degenerate skews fold explicitly into [ZMin, 1−ZMin]
// instead of panicking or relying on implicit behavior downstream.
func TestClampZ(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want float64
	}{
		{"zero", 0, ZMin},
		{"one", 1, 1 - ZMin},
		{"negative", -3, ZMin},
		{"above one", 7, 1 - ZMin},
		{"tiny", ZMin / 10, ZMin},
		{"near one", 1 - ZMin/10, 1 - ZMin},
		{"nan", math.NaN(), 0.5},
		{"interior", 0.2, 0.2},
		{"neutral", 0.5, 0.5},
		{"at floor", ZMin, ZMin},
		{"at ceiling", 1 - ZMin, 1 - ZMin},
		{"+inf", math.Inf(1), 1 - ZMin},
		{"-inf", math.Inf(-1), ZMin},
	}
	for _, c := range cases {
		if got := ClampZ(c.in); got != c.want {
			t.Errorf("%s: ClampZ(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

// TestDegenerateZGenerates: Z at and beyond the endpoints must build a
// working generator (clamped), not panic, and its sequences must stay
// deterministic per seed.
func TestDegenerateZGenerates(t *testing.T) {
	for _, z := range []float64{0, 1, -0.5, 2, math.NaN()} {
		g := New(11, z, ids(10))
		ops := g.Sequence(5, 15)
		if len(ops) != 20 {
			t.Fatalf("Z=%v: len = %d", z, len(ops))
		}
		for _, op := range ops {
			if op.Kind == Query && (op.ProcID < 0 || op.ProcID >= 10) {
				t.Fatalf("Z=%v: bad proc id %d", z, op.ProcID)
			}
		}
		again := New(11, z, ids(10)).Sequence(5, 15)
		for i := range ops {
			if ops[i] != again[i] {
				t.Fatalf("Z=%v: sequence not deterministic at %d", z, i)
			}
		}
	}
}

// TestHotSetDeterminism: the hot set is a pure function of (seed, Z,
// ids) — same seed, same set; and across many seeds the sets differ
// (the shuffle actually depends on the seed).
func TestHotSetDeterminism(t *testing.T) {
	key := func(hs []int) string {
		b := make([]byte, 0, len(hs)*3)
		for _, id := range hs {
			b = append(b, byte(id), byte(id>>8), ',')
		}
		return string(b)
	}
	distinct := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		a := New(seed, 0.2, ids(50)).HotSet()
		b := New(seed, 0.2, ids(50)).HotSet()
		if key(a) != key(b) {
			t.Fatalf("seed %d: hot set not deterministic", seed)
		}
		if len(a) != 10 {
			t.Fatalf("seed %d: hot set size %d, want 10", seed, len(a))
		}
		distinct[key(a)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("hot set identical across all seeds — shuffle ignores seed")
	}
}

func TestSingleHotProc(t *testing.T) {
	// Tiny populations still work: one procedure is always the hot one.
	g := New(1, 0.2, []int{42})
	for i := 0; i < 10; i++ {
		if g.PickProc() != 42 {
			t.Fatal("single proc not picked")
		}
	}
}
