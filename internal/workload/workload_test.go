package workload

import (
	"math"
	"testing"
)

func ids(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSequenceCounts(t *testing.T) {
	g := New(1, 0.2, ids(10))
	ops := g.Sequence(30, 70)
	if len(ops) != 100 {
		t.Fatalf("len = %d", len(ops))
	}
	var k, q int
	for _, op := range ops {
		if op.Kind == Update {
			k++
		} else {
			q++
			if op.ProcID < 0 || op.ProcID >= 10 {
				t.Fatalf("bad proc id %d", op.ProcID)
			}
		}
	}
	if k != 30 || q != 70 {
		t.Fatalf("k=%d q=%d", k, q)
	}
}

func TestSequenceDeterministic(t *testing.T) {
	a := New(7, 0.2, ids(10)).Sequence(20, 20)
	b := New(7, 0.2, ids(10)).Sequence(20, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
	c := New(8, 0.2, ids(10)).Sequence(20, 20)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical sequences")
	}
}

// TestLocalitySkew: with Z = 0.2, the 20% hot procedures should receive
// about 80% of accesses.
func TestLocalitySkew(t *testing.T) {
	g := New(3, 0.2, ids(100))
	hot := map[int]bool{}
	for _, id := range g.HotSet() {
		hot[id] = true
	}
	if len(hot) != 20 {
		t.Fatalf("hot set size %d, want 20", len(hot))
	}
	const draws = 20000
	hotHits := 0
	for i := 0; i < draws; i++ {
		if hot[g.PickProc()] {
			hotHits++
		}
	}
	frac := float64(hotHits) / draws
	if math.Abs(frac-0.8) > 0.02 {
		t.Fatalf("hot fraction = %.3f, want ~0.80", frac)
	}
}

func TestUniformWhenZHalf(t *testing.T) {
	g := New(3, 0.5, ids(10))
	counts := map[int]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[g.PickProc()]++
	}
	for id, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("proc %d got fraction %.3f, want ~0.1", id, frac)
		}
	}
}

func TestPickDistinct(t *testing.T) {
	g := New(5, 0.2, ids(4))
	got := g.PickDistinct(50, 60)
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 60 {
			t.Fatalf("out of range %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	if len(got) != 50 {
		t.Fatalf("len = %d", len(got))
	}
	// Full coverage draw.
	all := g.PickDistinct(10, 10)
	if len(all) != 10 {
		t.Fatal("full draw failed")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no procs":       func() { New(1, 0.2, nil) },
		"bad Z low":      func() { New(1, 0, ids(5)) },
		"bad Z high":     func() { New(1, 1, ids(5)) },
		"negative k":     func() { New(1, 0.2, ids(5)).Sequence(-1, 2) },
		"too many picks": func() { New(1, 0.2, ids(5)).PickDistinct(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSingleHotProc(t *testing.T) {
	// Tiny populations still work: one procedure is always the hot one.
	g := New(1, 0.2, []int{42})
	for i := 0; i < 10; i++ {
		if g.PickProc() != 42 {
			t.Fatal("single proc not picked")
		}
	}
}
