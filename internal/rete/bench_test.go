package rete

import (
	"testing"

	"dbproc/internal/dbtest"
	"dbproc/internal/tuple"
)

// benchNet builds a network with nProcs P1-style α-memories over adjacent
// bands and returns a token inside the first band.
func benchNet(b *testing.B, nProcs int) (*Network, *dbtest.World, []byte) {
	b.Helper()
	w := dbtest.NewWorld(dbtest.Config{N1: 2000})
	net := NewNetwork(w.Pager.Disk())
	s1 := w.R1.Schema()
	key := func(tup []byte) uint64 {
		return tuple.ClusterKey(s1.GetByName(tup, "skey"), s1.GetByName(tup, "tid"))
	}
	for i := 0; i < nProcs; i++ {
		lo := int64(i * 10)
		tc := net.TConst(s1, "skey", lo, lo+9)
		tc.Attach(net.NewMemory(s1, nil, key))
	}
	return net, w, w.R1Tuple(5000, 5, 3)
}

func BenchmarkDispatch200TConsts(b *testing.B) {
	net, w, tup := benchNet(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SubmitModify(w.Pager, "r1", tup, tup)
	}
}

func BenchmarkDispatchNaive200TConsts(b *testing.B) {
	net, w, tup := benchNet(b, 200)
	net.SetNaiveDispatch(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SubmitModify(w.Pager, "r1", tup, tup)
	}
}

func BenchmarkJoinTokenThroughAndNode(b *testing.B) {
	w := dbtest.NewWorld(dbtest.Config{})
	net := NewNetwork(w.Pager.Disk())
	s1, s2 := w.R1.Schema(), w.R2.Schema()
	tc := net.TConst(s1, "skey", 0, 199)
	left := net.NewMemory(s1, nil, func(t []byte) uint64 {
		return tuple.ClusterKey(s1.GetByName(t, "skey"), s1.GetByName(t, "tid"))
	})
	tc.Attach(left)
	right := net.NewMemory(s2, nil, func(t []byte) uint64 {
		return tuple.ClusterKey(s2.GetByName(t, "b"), s2.GetByName(t, "tid"))
	})
	w.R2.Hash().ScanAll(w.Pager, func(rec []byte) bool {
		right.Activate(w.Pager, Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
		return true
	})
	and := net.NewAndNode(left, right, "a", "b", "r2_", 80)
	beta := net.NewMemory(and.Schema(), nil, func(t []byte) uint64 {
		return tuple.ClusterKey(and.Schema().GetByName(t, "skey"), and.Schema().GetByName(t, "tid"))
	})
	and.Attach(beta)

	tup := w.R1Tuple(9999, 50, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Submit(w.Pager, "r1", Token{Tag: Plus, Tuple: tup})
		net.Submit(w.Pager, "r1", Token{Tag: Minus, Tuple: tup})
	}
}
