package rete

import (
	"testing"

	"dbproc/internal/dbtest"
	"dbproc/internal/query"
	"dbproc/internal/tuple"
)

// buildModel1 wires the paper's Figure 3 network over the dbtest world:
// one P1 procedure (band [20, 39]) whose α-memory is its value, and one P2
// procedure joining the SAME band to R2 (shared subexpression) plus one P2
// with its own band [50, 69] (unshared).
type m1Fixture struct {
	w        *dbtest.World
	net      *Network
	alphaP1  *Memory // shared C_f(R1) α-memory == P1's value
	alphaown *Memory // unshared P2's own left α-memory
	betaSh   *Memory // shared P2's value
	betaOwn  *Memory // unshared P2's value
	rightSh  *Memory // shared P2's right memory (σ_p2<5 R2)
	rightOwn *Memory
}

func r1Key(s *tuple.Schema) func([]byte) uint64 {
	return func(tup []byte) uint64 {
		return tuple.ClusterKey(s.GetByName(tup, "skey"), s.GetByName(tup, "tid"))
	}
}

func newM1Fixture(t *testing.T) *m1Fixture {
	t.Helper()
	w := dbtest.NewWorld(dbtest.Config{})
	net := NewNetwork(w.Pager.Disk())
	s1, s2 := w.R1.Schema(), w.R2.Schema()

	w.Pager.SetCharging(false)

	// Right memories: R2 tuples passing p2 < 5, clustered by join attr b.
	r2Key := func(tup []byte) uint64 {
		return tuple.ClusterKey(s2.GetByName(tup, "b"), s2.GetByName(tup, "tid"))
	}
	fill := func(m *Memory) {
		w.R2.Hash().ScanAll(w.Pager, func(rec []byte) bool {
			if s2.GetByName(rec, "p2") < 5 {
				m.Activate(w.Pager, Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
			}
			return true
		})
	}
	rightSh := net.NewMemory(s2, nil, r2Key)
	rightOwn := net.NewMemory(s2, nil, r2Key)
	fill(rightSh)
	fill(rightOwn)

	// P1 and shared P2: one t-const + α for band [20, 39].
	tcShared := net.TConst(s1, "skey", 20, 39)
	alphaP1 := net.NewMemory(s1, nil, r1Key(s1))
	tcShared.Attach(alphaP1)
	andSh := net.NewAndNode(alphaP1, rightSh, "a", "b", "r2_", 80)
	betaSh := net.NewMemory(andSh.Schema(), nil, func(tup []byte) uint64 {
		return tuple.ClusterKey(andSh.Schema().GetByName(tup, "skey"), andSh.Schema().GetByName(tup, "tid"))
	})
	andSh.Attach(betaSh)

	// Unshared P2: own t-const + α for band [50, 69].
	tcOwn := net.TConst(s1, "skey", 50, 69)
	alphaOwn := net.NewMemory(s1, nil, r1Key(s1))
	tcOwn.Attach(alphaOwn)
	andOwn := net.NewAndNode(alphaOwn, rightOwn, "a", "b", "r2_", 80)
	betaOwn := net.NewMemory(andOwn.Schema(), nil, func(tup []byte) uint64 {
		return tuple.ClusterKey(andOwn.Schema().GetByName(tup, "skey"), andOwn.Schema().GetByName(tup, "tid"))
	})
	andOwn.Attach(betaOwn)

	// Initial fill: submit every R1 tuple as a + token.
	w.R1.Tree().ScanAll(w.Pager, func(rec []byte) bool {
		net.Submit(w.Pager, "r1", Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
		return true
	})

	w.Pager.BeginOp()
	w.Pager.SetCharging(true)
	w.Meter.Reset()
	return &m1Fixture{
		w: w, net: net,
		alphaP1: alphaP1, alphaown: alphaOwn,
		betaSh: betaSh, betaOwn: betaOwn,
		rightSh: rightSh, rightOwn: rightOwn,
	}
}

// moveTuple rewrites R1 tuple tid from oldSkey to newSkey and submits the
// ± tokens.
func (f *m1Fixture) moveTuple(t *testing.T, tid, oldSkey, newSkey int64) {
	t.Helper()
	w := f.w
	prev := w.Pager.SetCharging(false)
	old, ok := w.R1.Tree().Get(w.Pager, tuple.ClusterKey(oldSkey, tid))
	if !ok {
		t.Fatalf("tuple %d at skey %d missing", tid, oldSkey)
	}
	newTup := append([]byte(nil), old...)
	w.R1.Schema().SetByName(newTup, "skey", newSkey)
	w.R1.DeleteKeyed(w.Pager, tuple.ClusterKey(oldSkey, tid))
	w.R1.Insert(w.Pager, newTup)
	w.Pager.BeginOp()
	w.Pager.SetCharging(prev)
	f.net.SubmitModify(w.Pager, "r1", old, newTup)
	w.Pager.BeginOp()
}

// expectBeta recomputes a band's join value and compares to the β-memory.
func (f *m1Fixture) expectBeta(t *testing.T, beta *Memory, lo, hi int64) {
	t.Helper()
	prev := f.w.Pager.SetCharging(false)
	defer f.w.Pager.SetCharging(prev)
	want := map[uint64]bool{}
	plan := &query.Refine{
		Child: query.NewHashJoinProbe(query.NewBTreeRangeScan(f.w.R1, lo, hi), f.w.R2, "a", 80),
		Pred:  query.Compare{Field: "r2_p2", Op: query.Lt, Value: 5},
	}
	sch := plan.Schema()
	plan.Execute(&query.Ctx{Meter: f.w.Meter, Pager: f.w.Pager}, func(tup []byte) bool {
		want[tuple.ClusterKey(sch.GetByName(tup, "skey"), sch.GetByName(tup, "tid"))] = true
		return true
	})
	got := 0
	beta.File().Scan(f.w.Pager, func(k uint64, _ []byte) bool {
		if !want[k] {
			t.Errorf("β holds unexpected key %d", k)
		}
		got++
		return true
	})
	if got != len(want) {
		t.Errorf("β holds %d tuples, recompute has %d", got, len(want))
	}
}

func TestInitialFill(t *testing.T) {
	f := newM1Fixture(t)
	if f.alphaP1.Len() != 20 {
		t.Fatalf("shared α holds %d, want 20", f.alphaP1.Len())
	}
	if f.alphaown.Len() != 20 {
		t.Fatalf("own α holds %d, want 20", f.alphaown.Len())
	}
	// Band [20,39] -> a = skey%40 in 20..39, p2 = a%10 < 5 keeps 10.
	f.expectBeta(t, f.betaSh, 20, 39)
	f.expectBeta(t, f.betaOwn, 50, 69)
	if f.betaSh.Len() != 10 || f.betaOwn.Len() != 10 {
		t.Fatalf("β sizes %d, %d; want 10, 10", f.betaSh.Len(), f.betaOwn.Len())
	}
}

func TestTConstSharing(t *testing.T) {
	f := newM1Fixture(t)
	// Re-requesting the same band returns the same node; a new band makes
	// a new one.
	before := f.net.NumTConsts()
	tc := f.net.TConst(f.w.R1.Schema(), "skey", 20, 39)
	if f.net.NumTConsts() != before {
		t.Fatal("shared t-const duplicated")
	}
	_ = tc
	f.net.TConst(f.w.R1.Schema(), "skey", 70, 79)
	if f.net.NumTConsts() != before+1 {
		t.Fatal("new band did not create a t-const")
	}
}

func TestTokenPropagation(t *testing.T) {
	f := newM1Fixture(t)
	// Move into the shared band: α and both downstream structures update.
	f.moveTuple(t, 110, 110, 30) // a = 110%40 = 30, p2 = 0 < 5: joins
	if !f.alphaP1.File().Contains(tuple.ClusterKey(30, 110)) {
		t.Fatal("+ token did not reach shared α")
	}
	f.expectBeta(t, f.betaSh, 20, 39)
	// Move out again.
	f.moveTuple(t, 110, 30, 110)
	if f.alphaP1.File().Contains(tuple.ClusterKey(30, 110)) {
		t.Fatal("- token did not delete from shared α")
	}
	f.expectBeta(t, f.betaSh, 20, 39)
	f.expectBeta(t, f.betaOwn, 50, 69)
}

func TestFailedJoinLeavesBetaUnchanged(t *testing.T) {
	f := newM1Fixture(t)
	// tid 115: a = 35, p2 = 5 -> right memory lacks it; α gains, β doesn't.
	f.moveTuple(t, 115, 115, 25)
	if !f.alphaP1.File().Contains(tuple.ClusterKey(25, 115)) {
		t.Fatal("α missing band tuple")
	}
	f.expectBeta(t, f.betaSh, 20, 39)
}

func TestScreeningCharges(t *testing.T) {
	f := newM1Fixture(t)
	f.w.Meter.Reset()
	// Move within the shared band: both token values activate exactly the
	// one shared t-const -> 2 screens. (The unshared band is untouched.)
	f.moveTuple(t, 22, 22, 35)
	if got := f.w.Meter.Snapshot().Screens; got != 2 {
		t.Fatalf("screens = %d, want 2 (rule-indexed dispatch)", got)
	}
	// A move between the two bands activates each band's t-const once.
	f.w.Meter.Reset()
	f.moveTuple(t, 22, 35, 55)
	if got := f.w.Meter.Snapshot().Screens; got != 2 {
		t.Fatalf("cross-band move screens = %d, want 2", got)
	}
	// A completely irrelevant move charges nothing at all.
	f.w.Meter.Reset()
	f.moveTuple(t, 150, 150, 160)
	if ms := f.w.Meter.Milliseconds(); ms != 0 {
		t.Fatalf("irrelevant move cost %v ms", ms)
	}
}

func TestJoinProbeChargesRightMemoryReads(t *testing.T) {
	f := newM1Fixture(t)
	f.w.Meter.Reset()
	f.moveTuple(t, 110, 110, 30)
	c := f.w.Meter.Snapshot()
	// α refresh (read+write) plus at least one right-memory probe read
	// plus β refresh.
	if c.PageReads < 2 || c.PageWrites < 2 {
		t.Fatalf("expected α+β refresh and probe I/O, got %v", c)
	}
	// RVM never charges delta-set ops; that is AVM's C_overhead.
	if c.DeltaOps != 0 {
		t.Fatalf("RVM charged %d delta ops", c.DeltaOps)
	}
}

func TestRightActivation(t *testing.T) {
	f := newM1Fixture(t)
	s2 := f.w.R2.Schema()
	// Insert a brand-new R2 tuple joining skey band [20,39] tuples with
	// a=25 (tids 25, 65, ...): p2 < 5 so it qualifies.
	nt := s2.New()
	s2.SetByName(nt, "tid", 999)
	s2.SetByName(nt, "b", 25)
	s2.SetByName(nt, "c", 0)
	s2.SetByName(nt, "p2", 1)
	before := f.betaSh.Len()
	f.rightSh.Activate(f.w.Pager, Token{Tag: Plus, Tuple: nt})
	// R1 has skey 25 (tid 25) in band with a=25: one... every R1 tuple in
	// band with a=25: skey in [20,39] and a=skey%40=25 -> skey=25 only.
	if got := f.betaSh.Len(); got != before+1 {
		t.Fatalf("right activation produced %d new β tuples, want 1", got-before)
	}
	// And the reverse - token removes it again.
	f.rightSh.Activate(f.w.Pager, Token{Tag: Minus, Tuple: nt})
	if got := f.betaSh.Len(); got != before {
		t.Fatalf("right - token left β at %d, want %d", got, before)
	}
}

func TestChainedTConsts(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	net := NewNetwork(w.Pager.Disk())
	s1 := w.R1.Schema()
	// Chain: skey in [0, 99] then a <= 4 (as a one-sided band).
	tc1 := net.TConst(s1, "skey", 0, 99)
	tc2 := net.TConstChained(s1, "a", 0, 4)
	alpha := net.NewMemory(s1, nil, r1Key(s1))
	tc1.Attach(tc2)
	tc2.Attach(alpha)
	w.R1.Tree().ScanAll(w.Pager, func(rec []byte) bool {
		net.Submit(w.Pager, "r1", Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
		return true
	})
	// skey 0..99 with a=skey%40 in 0..4: 0-4, 40-44, 80-84 = 15 tuples.
	if alpha.Len() != 15 {
		t.Fatalf("chained α holds %d, want 15", alpha.Len())
	}
}

func TestSubmitUnknownRelationIsNoop(t *testing.T) {
	f := newM1Fixture(t)
	f.w.Meter.Reset()
	f.net.Submit(f.w.Pager, "nonexistent", Token{Tag: Plus, Tuple: f.w.R1Tuple(1, 2, 3)})
	if f.w.Meter.Milliseconds() != 0 {
		t.Fatal("unknown relation charged cost")
	}
}

func TestConstructorPanics(t *testing.T) {
	f := newM1Fixture(t)
	for name, fn := range map[string]func(){
		"inverted band": func() { f.net.TConst(f.w.R1.Schema(), "skey", 5, 4) },
		"nil key":       func() { f.net.NewMemory(f.w.R1.Schema(), nil, nil) },
		"bad field":     func() { f.net.TConst(f.w.R1.Schema(), "zzz", 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTagString(t *testing.T) {
	if Plus.String() != "+" || Minus.String() != "-" {
		t.Fatal("Tag.String wrong")
	}
}

// TestModel2Chain builds the model-2 shape: left α joins a right β-memory
// that is itself the join σ_p2<5(R2) ⋈ R3, and checks three-way results.
func TestModel2Chain(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	net := NewNetwork(w.Pager.Disk())
	s1, s2, s3 := w.R1.Schema(), w.R2.Schema(), w.R3.Schema()
	w.Pager.SetCharging(false)

	// Right side: α(σ R2) ⋈ α(R3) -> β, clustered by R2.b for the outer
	// probe.
	alphaR2 := net.NewMemory(s2, nil, func(tup []byte) uint64 {
		return tuple.ClusterKey(s2.GetByName(tup, "c"), s2.GetByName(tup, "tid"))
	})
	alphaR3 := net.NewMemory(s3, nil, func(tup []byte) uint64 {
		return tuple.ClusterKey(s3.GetByName(tup, "d"), s3.GetByName(tup, "tid"))
	})
	andR23 := net.NewAndNode(alphaR2, alphaR3, "c", "d", "r3_", 96)
	betaRight := net.NewMemory(andR23.Schema(), nil, func(tup []byte) uint64 {
		sch := andR23.Schema()
		return tuple.ClusterKey(sch.GetByName(tup, "b"), sch.GetByName(tup, "tid"))
	})
	andR23.Attach(betaRight)

	// Load R3 first, then σ R2, through the network itself.
	w.R3.Hash().ScanAll(w.Pager, func(rec []byte) bool {
		alphaR3.Activate(w.Pager, Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
		return true
	})
	w.R2.Hash().ScanAll(w.Pager, func(rec []byte) bool {
		if s2.GetByName(rec, "p2") < 5 {
			alphaR2.Activate(w.Pager, Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
		}
		return true
	})
	if betaRight.Len() != 20 { // 20 of 40 R2 tuples pass p2<5, each joins 1 R3
		t.Fatalf("right β holds %d, want 20", betaRight.Len())
	}

	// Left side: C_f(R1) α probing the right β on a = b.
	tc := net.TConst(s1, "skey", 20, 39)
	alphaL := net.NewMemory(s1, nil, r1Key(s1))
	tc.Attach(alphaL)
	and2 := net.NewAndNode(alphaL, betaRight, "a", "b", "rb_", 96)
	result := net.NewMemory(and2.Schema(), nil, func(tup []byte) uint64 {
		sch := and2.Schema()
		return tuple.ClusterKey(sch.GetByName(tup, "skey"), sch.GetByName(tup, "tid"))
	})
	and2.Attach(result)
	w.R1.Tree().ScanAll(w.Pager, func(rec []byte) bool {
		net.Submit(w.Pager, "r1", Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
		return true
	})
	if result.Len() != 10 {
		t.Fatalf("3-way result holds %d, want 10", result.Len())
	}
	// Verify the three-way join attributes line up.
	sch := and2.Schema()
	result.File().Scan(w.Pager, func(_ uint64, rec []byte) bool {
		if sch.GetByName(rec, "a") != sch.GetByName(rec, "rb_b") {
			t.Errorf("R1-R2 join mismatch")
		}
		if sch.GetByName(rec, "rb_c") != sch.GetByName(rec, "rb_r3_d") {
			t.Errorf("R2-R3 join mismatch")
		}
		return true
	})

	// Dynamic check: move a tuple into the band and confirm the three-way
	// result tracks it.
	w.Pager.SetCharging(true)
	old, _ := w.R1.Tree().Get(w.Pager, tuple.ClusterKey(110, 110)) // a=30, p2=0: qualifies
	newTup := append([]byte(nil), old...)
	s1.SetByName(newTup, "skey", 25)
	net.SubmitModify(w.Pager, "r1", old, newTup)
	if result.Len() != 11 {
		t.Fatalf("after move-in, result holds %d, want 11", result.Len())
	}
}
