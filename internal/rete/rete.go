// Package rete implements Rete view maintenance (RVM), the paper's shared
// Update Cache variant: a discrimination network in the style of Forgy's
// Rete algorithm, built from the node types of the paper's section 2:
//
//   - a root that receives all ± tokens and dispatches them;
//   - t-const nodes testing "attribute op constant" conditions;
//   - α-memory nodes holding the tuples that passed the t-const chain;
//   - and-nodes joining tokens against the memory on their opposite input;
//   - β-memory nodes holding join results.
//
// Memory nodes are disk-resident, key-clustered files; α/β memories that
// materialize a procedure's value are the procedure's cache entry itself.
// Subexpression sharing is structural: requesting a t-const with a band
// already in the network returns the existing node, so its α-memory (and
// everything below it) is maintained once no matter how many consumers
// hang off it — the mechanism behind the paper's sharing factor SF.
//
// Dispatch from the root is rule-indexed: an interval index per
// (relation, attribute) activates only the t-const nodes whose band
// contains the token's attribute value. Each activation is one charged C1
// screen, so screening cost matches the model's N·C1·2fl terms rather than
// a naive broadcast's N·C1·2l.
//
// Tokens are submitted on a session's pager: memory files live on the
// shared disk, while screening and I/O charges land on the submitting
// session's meter. The network mutex serializes propagation.
package rete

import (
	"fmt"
	"sort"
	"sync"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

// Tag marks a token as an insertion (+) or deletion (−); a modification is
// a − for the old value followed by a + for the new one.
type Tag int8

// Token tags.
const (
	Plus  Tag = +1
	Minus Tag = -1
)

// String returns "+" or "-".
func (t Tag) String() string {
	if t == Plus {
		return "+"
	}
	return "-"
}

// Token is one change flowing through the network.
type Token struct {
	Tag   Tag
	Tuple []byte
}

// Node is anything that can receive a token; pg is the submitting
// session's pager, charged for all work the activation causes.
type Node interface {
	Activate(pg *storage.Pager, tok Token)
}

// Network is the Rete net plus its root dispatch structures. Token
// submission is serialized by the network's mutex: α- and β-memories are
// shared state, and admitting one token (or one modify pair) at a time
// makes concurrent propagation equivalent to some serial token order.
type Network struct {
	mu   sync.Mutex
	disk *storage.Disk

	// dispatchers index t-const nodes by (relation, attribute) band.
	dispatchers map[dispatchKey]*dispatcher
	// shared t-const lookup for subexpression sharing.
	tconsts map[tcKey]*TConst
	// naive disables rule-indexed dispatch: the root broadcasts to every
	// t-const on the token's relation, the paper's literal semantics.
	naive bool
}

// SetNaiveDispatch switches between rule-indexed dispatch (the default:
// only t-const nodes whose band contains the token's value are activated)
// and the paper's literal broadcast semantics (every t-const on the
// relation is activated and screens the token itself). The results are
// identical; the screening cost is N·C1·2l per update instead of
// N·C1·2fl. It exists for the ablation experiment.
func (n *Network) SetNaiveDispatch(on bool) { n.naive = on }

type dispatchKey struct {
	rel   string
	field int
}

type tcKey struct {
	rel    string
	field  int
	lo, hi int64
}

type dispatcher struct {
	sch       *tuple.Schema
	field     int
	intervals []dispatchInterval // sorted by lo
}

type dispatchInterval struct {
	lo, hi int64
	node   *TConst
}

// NewNetwork creates an empty network; private memory-node files are
// allocated on disk.
func NewNetwork(disk *storage.Disk) *Network {
	return &Network{
		disk:        disk,
		dispatchers: make(map[dispatchKey]*dispatcher),
		tconsts:     make(map[tcKey]*TConst),
	}
}

// TConst returns the t-const node testing lo <= field <= hi on the given
// relation, creating it if the network does not already contain one — the
// shared-subexpression mechanism. An equality condition is a one-point
// band.
func (n *Network) TConst(sch *tuple.Schema, fieldName string, lo, hi int64) *TConst {
	if lo > hi {
		panic("rete: inverted t-const band")
	}
	field := sch.MustFieldIndex(fieldName)
	key := tcKey{sch.Name(), field, lo, hi}
	if tc, ok := n.tconsts[key]; ok {
		return tc
	}
	tc := &TConst{
		net: n,
		sch: sch,
		// A Range predicate in the t-const's own terms; dispatch
		// guarantees a match for root-routed tokens, but chained t-consts
		// evaluate it for real.
		field: field,
		lo:    lo,
		hi:    hi,
	}
	n.tconsts[key] = tc
	dk := dispatchKey{sch.Name(), field}
	d := n.dispatchers[dk]
	if d == nil {
		d = &dispatcher{sch: sch, field: field}
		n.dispatchers[dk] = d
	}
	iv := dispatchInterval{lo: lo, hi: hi, node: tc}
	pos := sort.Search(len(d.intervals), func(i int) bool { return d.intervals[i].lo >= lo })
	d.intervals = append(d.intervals, dispatchInterval{})
	copy(d.intervals[pos+1:], d.intervals[pos:])
	d.intervals[pos] = iv
	return tc
}

// TConstChained creates a t-const node that is NOT dispatched from the
// root: attach it under another t-const to test a further condition on
// tokens that already passed the first. Chained nodes are not shared (root
// dispatch is where subexpression sharing pays off).
func (n *Network) TConstChained(sch *tuple.Schema, fieldName string, lo, hi int64) *TConst {
	if lo > hi {
		panic("rete: inverted t-const band")
	}
	return &TConst{net: n, sch: sch, field: sch.MustFieldIndex(fieldName), lo: lo, hi: hi}
}

// NumTConsts returns the number of distinct root-dispatched t-const nodes,
// after sharing.
func (n *Network) NumTConsts() int { return len(n.tconsts) }

// Submit deposits a token for the named relation at the root, on behalf of
// the session owning pg. The root dispatches it to every t-const on that
// relation whose band contains the token's attribute value. Everything
// downstream — t-const screens, memory-node I/O, and-node probes — is
// attributed to the rete component of pg's meter.
func (n *Network) Submit(pg *storage.Pager, rel string, tok Token) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.submit(pg, rel, tok)
}

func (n *Network) submit(pg *storage.Pager, rel string, tok Token) {
	meter := pg.Meter()
	prev := meter.SetComponent(metric.CompRete)
	defer meter.SetComponent(prev)
	for key, d := range n.dispatchers {
		if key.rel != rel {
			continue
		}
		if n.naive {
			for _, iv := range d.intervals {
				iv.node.Activate(pg, tok)
			}
			continue
		}
		v := d.sch.Get(tok.Tuple, d.field)
		for _, iv := range d.intervals {
			if iv.lo > v {
				break
			}
			if v <= iv.hi {
				iv.node.Activate(pg, tok)
			}
		}
	}
}

// SubmitModify is the convenience for an in-place modification: a − token
// for the old value then a + token for the new one, admitted as one
// atomic pair — no other session's token lands between them.
func (n *Network) SubmitModify(pg *storage.Pager, rel string, oldTuple, newTuple []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.submit(pg, rel, Token{Tag: Minus, Tuple: oldTuple})
	n.submit(pg, rel, Token{Tag: Plus, Tuple: newTuple})
}

// TConst tests a single "attribute in band" condition. Each activation is
// one charged screen; tokens failing the test are discarded.
type TConst struct {
	net    *Network
	sch    *tuple.Schema
	field  int
	lo, hi int64
	succs  []Node
}

// Attach adds a successor node.
func (t *TConst) Attach(n Node) { t.succs = append(t.succs, n) }

// Activate implements Node.
func (t *TConst) Activate(pg *storage.Pager, tok Token) {
	pg.Meter().Screen(1)
	v := t.sch.Get(tok.Tuple, t.field)
	if v < t.lo || v > t.hi {
		return
	}
	for _, s := range t.succs {
		s.Activate(pg, tok)
	}
}

// String describes the condition.
func (t *TConst) String() string {
	if t.lo == t.hi {
		return fmt.Sprintf("t-const(%s.%s = %d)", t.sch.Name(), t.sch.FieldName(t.field), t.lo)
	}
	return fmt.Sprintf("t-const(%d <= %s.%s <= %d)", t.lo, t.sch.Name(), t.sch.FieldName(t.field), t.hi)
}

// Memory is an α- or β-memory node: a disk-resident, key-clustered set of
// tuples. A + token inserts its tuple, a − token deletes it; either way the
// token is passed to all successors (the and-nodes fed by this memory).
type Memory struct {
	net   *Network
	sch   *tuple.Schema
	file  *storage.OrderedFile
	key   func([]byte) uint64
	succs []Node
}

// NewMemory creates a memory node backed by file (pass a procedure's cache
// file to make the memory be the materialized procedure value, or nil to
// allocate a private file). key clusters the contents.
func (n *Network) NewMemory(sch *tuple.Schema, file *storage.OrderedFile, key func([]byte) uint64) *Memory {
	if key == nil {
		panic("rete: nil memory key")
	}
	if file == nil {
		file = storage.NewOrderedFile(n.disk, sch.Width())
	}
	return &Memory{net: n, sch: sch, file: file, key: key}
}

// Attach adds a successor node.
func (m *Memory) Attach(n Node) { m.succs = append(m.succs, n) }

// File exposes the backing file (shared with the cache for result
// memories).
func (m *Memory) File() *storage.OrderedFile { return m.file }

// Schema returns the memory's tuple schema.
func (m *Memory) Schema() *tuple.Schema { return m.sch }

// Len returns the number of tuples held.
func (m *Memory) Len() int { return m.file.Len() }

// Activate implements Node.
func (m *Memory) Activate(pg *storage.Pager, tok Token) {
	k := m.key(tok.Tuple)
	if tok.Tag == Plus {
		if !m.file.Contains(k) {
			m.file.Insert(pg, k, tok.Tuple)
		}
	} else {
		m.file.Delete(pg, k)
	}
	for _, s := range m.succs {
		s.Activate(pg, tok)
	}
}

// Load bulk-fills the memory from sorted rows (setup only; run with
// charging disabled for uncharged initialization).
func (m *Memory) Load(pg *storage.Pager, keys []uint64, recs [][]byte) {
	m.file.Replace(pg, keys, recs)
}

// probe finds the tuples whose join attribute equals v, scanning only the
// pages covering the (v, *) cluster-key band.
func (m *Memory) probe(pg *storage.Pager, v int64, fn func(rec []byte) bool) {
	m.file.ScanRange(pg, tuple.MinKeyFor(v), tuple.MaxKeyFor(v), func(_ uint64, rec []byte) bool {
		return fn(rec)
	})
}

// scanMatching finds tuples whose arbitrary attribute equals v with a full
// scan; used for right activations, where the opposite (left) memory is
// clustered by its own result key, not the join attribute.
func (m *Memory) scanMatching(pg *storage.Pager, field int, v int64, fn func(rec []byte) bool) {
	m.file.Scan(pg, func(_ uint64, rec []byte) bool {
		if m.sch.Get(rec, field) == v {
			return fn(rec)
		}
		return true
	})
}

// AndNode joins its left input against its right memory (and vice versa)
// on leftField = rightField. The right memory must be clustered by
// rightField so left activations probe it by key band; right activations
// search the left memory by scan.
type AndNode struct {
	net        *Network
	left       *Memory
	right      *Memory
	leftField  int
	rightField int
	out        *tuple.Schema
	leftN      int
	succs      []Node
}

// NewAndNode wires an and-node between two memories, returning it after
// attaching it to both (left tokens continue from the left memory, right
// tokens from the right). The output schema is left's attributes followed
// by right's with rightPrefix, in width-byte tuples.
func (n *Network) NewAndNode(left, right *Memory, leftField, rightField, rightPrefix string, width int) *AndNode {
	a := &AndNode{
		net:        n,
		left:       left,
		right:      right,
		leftField:  left.sch.MustFieldIndex(leftField),
		rightField: right.sch.MustFieldIndex(rightField),
		out: tuple.Concat(left.sch.Name()+"_join_"+right.sch.Name(), width,
			left.sch, right.sch, rightPrefix),
		leftN: left.sch.NumFields(),
	}
	left.Attach(leftInput{a})
	right.Attach(rightInput{a})
	return a
}

// Attach adds a successor node receiving the joined tokens.
func (a *AndNode) Attach(n Node) { a.succs = append(a.succs, n) }

// Schema returns the join output schema.
func (a *AndNode) Schema() *tuple.Schema { return a.out }

type leftInput struct{ a *AndNode }

func (l leftInput) Activate(pg *storage.Pager, tok Token) { l.a.activateLeft(pg, tok) }

type rightInput struct{ a *AndNode }

func (r rightInput) Activate(pg *storage.Pager, tok Token) { r.a.activateRight(pg, tok) }

func (a *AndNode) combine(ltup, rtup []byte) []byte {
	out := a.out.New()
	for i := 0; i < a.leftN; i++ {
		a.out.Set(out, i, a.left.sch.Get(ltup, i))
	}
	for i := 0; i < a.right.sch.NumFields(); i++ {
		a.out.Set(out, a.leftN+i, a.right.sch.Get(rtup, i))
	}
	return out
}

func (a *AndNode) emit(pg *storage.Pager, tok Token) {
	for _, s := range a.succs {
		s.Activate(pg, tok)
	}
}

func (a *AndNode) activateLeft(pg *storage.Pager, tok Token) {
	v := a.left.sch.Get(tok.Tuple, a.leftField)
	a.right.probe(pg, v, func(rtup []byte) bool {
		a.emit(pg, Token{Tag: tok.Tag, Tuple: a.combine(tok.Tuple, rtup)})
		return true
	})
}

func (a *AndNode) activateRight(pg *storage.Pager, tok Token) {
	v := a.right.sch.Get(tok.Tuple, a.rightField)
	a.left.scanMatching(pg, a.leftField, v, func(ltup []byte) bool {
		a.emit(pg, Token{Tag: tok.Tag, Tuple: a.combine(ltup, tok.Tuple)})
		return true
	})
}
