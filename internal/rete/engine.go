package rete

import (
	"dbproc/internal/obs"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
)

// Engine adapts a Network to the procedure layer's Maintainer interface:
// each update transaction is turned into − tokens for the old tuple values
// and + tokens for the new ones, submitted at the network root.
type Engine struct {
	net     *Network
	prepare func(pg *storage.Pager)
	tracer  *obs.Tracer
}

// NewEngine wraps net; prepare (may be nil) runs the one-time network fill
// when the strategy is prepared.
func NewEngine(net *Network, prepare func(pg *storage.Pager)) *Engine {
	return &Engine{net: net, prepare: prepare}
}

// Name identifies the algorithm.
func (e *Engine) Name() string { return "RVM" }

// Network returns the wrapped network.
func (e *Engine) Network() *Network { return e.net }

// SetTracer attaches a tracer; each Apply then records a rete.propagate
// span covering the transaction's token propagation.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Prepare runs the one-time fill; run it with charging disabled.
func (e *Engine) Prepare(pg *storage.Pager) {
	if e.prepare != nil {
		e.prepare(pg)
	}
}

// Apply submits the transaction's deltas as tokens: deletions first, then
// insertions, so an in-place modification is the paper's "delete followed
// by insert".
func (e *Engine) Apply(pg *storage.Pager, rel *relation.Relation, inserted, deleted [][]byte) {
	sp := e.tracer.Begin("rete.propagate")
	sp.Set("rel", rel.Schema().Name())
	sp.Set("tokens", len(inserted)+len(deleted))
	name := rel.Schema().Name()
	for _, tup := range deleted {
		e.net.Submit(pg, name, Token{Tag: Minus, Tuple: tup})
	}
	for _, tup := range inserted {
		e.net.Submit(pg, name, Token{Tag: Plus, Tuple: tup})
	}
	e.tracer.End(sp)
}
