package rete

import (
	"testing"

	"dbproc/internal/dbtest"
	"dbproc/internal/storage"
	"dbproc/internal/tuple"
)

func TestEngineAdaptsNetworkToMaintainer(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	net := NewNetwork(w.Pager.Disk())
	s1 := w.R1.Schema()
	tc := net.TConst(s1, "skey", 20, 39)
	alpha := net.NewMemory(s1, nil, r1Key(s1))
	tc.Attach(alpha)

	prepared := false
	eng := NewEngine(net, func(pg *storage.Pager) {
		prepared = true
		w.R1.Tree().ScanAll(w.Pager, func(rec []byte) bool {
			net.Submit(w.Pager, "r1", Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
			return true
		})
	})
	if eng.Name() != "RVM" || eng.Network() != net {
		t.Fatal("engine accessors wrong")
	}
	eng.Prepare(w.Pager)
	if !prepared || alpha.Len() != 20 {
		t.Fatalf("prepare did not fill (len=%d)", alpha.Len())
	}

	// Apply turns a delta into -/+ tokens in order.
	old, _ := w.R1.Tree().Get(w.Pager, tuple.ClusterKey(25, 25))
	newTup := append([]byte(nil), old...)
	s1.SetByName(newTup, "skey", 99)
	eng.Apply(w.Pager, w.R1, [][]byte{newTup}, [][]byte{old})
	if alpha.File().Contains(tuple.ClusterKey(25, 25)) {
		t.Fatal("deleted token not applied")
	}
	if alpha.Len() != 19 {
		t.Fatalf("alpha len = %d, want 19", alpha.Len())
	}
}

func TestEngineNilPrepare(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	eng := NewEngine(NewNetwork(w.Pager.Disk()), nil)
	eng.Prepare(w.Pager) // must not panic
}

func TestNaiveDispatchSameContentsMoreScreens(t *testing.T) {
	build := func(naive bool) (*Network, *Memory, *Memory, *dbtest.World) {
		w := dbtest.NewWorld(dbtest.Config{})
		net := NewNetwork(w.Pager.Disk())
		net.SetNaiveDispatch(naive)
		s1 := w.R1.Schema()
		tcA := net.TConst(s1, "skey", 20, 39)
		a := net.NewMemory(s1, nil, r1Key(s1))
		tcA.Attach(a)
		tcB := net.TConst(s1, "skey", 100, 119)
		b := net.NewMemory(s1, nil, r1Key(s1))
		tcB.Attach(b)
		w.R1.Tree().ScanAll(w.Pager, func(rec []byte) bool {
			net.Submit(w.Pager, "r1", Token{Tag: Plus, Tuple: append([]byte(nil), rec...)})
			return true
		})
		return net, a, b, w
	}
	_, a1, b1, w1 := build(false)
	_, a2, b2, w2 := build(true)
	if a1.Len() != a2.Len() || b1.Len() != b2.Len() {
		t.Fatalf("naive dispatch changed contents: %d/%d vs %d/%d", a1.Len(), b1.Len(), a2.Len(), b2.Len())
	}
	// Indexed: one screen per matching (token, t-const); naive: one per
	// (token, t-const) pair regardless: 200 tokens x 2 t-consts.
	idx := w1.Meter.Snapshot().Screens
	naive := w2.Meter.Snapshot().Screens
	if idx != 40 {
		t.Fatalf("indexed dispatch screens = %d, want 40", idx)
	}
	if naive != 400 {
		t.Fatalf("naive dispatch screens = %d, want 400", naive)
	}
}

func TestNodeStringsAndAccessors(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	net := NewNetwork(w.Pager.Disk())
	s1 := w.R1.Schema()
	band := net.TConst(s1, "skey", 5, 9)
	if got := band.String(); got != "t-const(5 <= r1.skey <= 9)" {
		t.Errorf("band String = %q", got)
	}
	eq := net.TConst(s1, "skey", 7, 7)
	if got := eq.String(); got != "t-const(r1.skey = 7)" {
		t.Errorf("eq String = %q", got)
	}
	mem := net.NewMemory(s1, nil, r1Key(s1))
	if mem.Schema() != s1 {
		t.Error("Memory.Schema wrong")
	}
	chained := net.TConstChained(s1, "a", 0, 3)
	if chained.String() != "t-const(0 <= r1.a <= 3)" {
		t.Errorf("chained String = %q", chained.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("inverted chained band should panic")
		}
	}()
	net.TConstChained(s1, "a", 3, 0)
}

func TestMemoryLoad(t *testing.T) {
	w := dbtest.NewWorld(dbtest.Config{})
	net := NewNetwork(w.Pager.Disk())
	s1 := w.R1.Schema()
	mem := net.NewMemory(s1, nil, r1Key(s1))
	keys := []uint64{tuple.ClusterKey(1, 1), tuple.ClusterKey(2, 2)}
	recs := [][]byte{w.R1Tuple(1, 1, 0), w.R1Tuple(2, 2, 0)}
	mem.Load(w.Pager, keys, recs)
	if mem.Len() != 2 || !mem.File().Contains(keys[0]) {
		t.Fatal("Load failed")
	}
}
