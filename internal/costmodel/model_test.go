package costmodel

import (
	"math"
	"testing"
)

// TestQueryCostsAgainstHandComputation pins the basic query costs to values
// computed by hand from the paper's formulas at the default parameters.
func TestQueryCostsAgainstHandComputation(t *testing.T) {
	p := Default()
	// C_queryP1 = C1·fN + C2·⌈f·b⌉ + C2·H1 = 100 + 30·3 + 30·1 = 220.
	if got := p.QueryP1Cost(); got != 220 {
		t.Errorf("QueryP1Cost = %v, want 220", got)
	}
	// C_queryP2 = C_queryP1 + C1·fN + C2·Y1, Y1 = Cardenas(250, 100).
	wantP2 := 220 + 100 + 30*Cardenas(250, 100)
	if got := p.QueryP2Cost(Model1); math.Abs(got-wantP2) > 1e-9 {
		t.Errorf("QueryP2Cost(model1) = %v, want %v", got, wantP2)
	}
	// Model 2 adds C2·Y6 + C1·fN with Y6 = Y1 (R3 sized like R2).
	wantP2m2 := wantP2 + 30*Cardenas(250, 100) + 100
	if got := p.QueryP2Cost(Model2); math.Abs(got-wantP2m2) > 1e-9 {
		t.Errorf("QueryP2Cost(model2) = %v, want %v", got, wantP2m2)
	}
	// Equal populations: plain average.
	want := (220 + wantP2) / 2
	if got := p.ProcessQueryCost(Model1); math.Abs(got-want) > 1e-9 {
		t.Errorf("ProcessQueryCost = %v, want %v", got, want)
	}
}

// TestZeroUpdateProbabilityCachingIsFree asserts the paper's observation
// about Figures 4/5: "the cost of Cache and Invalidate and both versions of
// Update Cache are equal when the update probability P is zero" — all three
// degrade to a single cached read.
func TestZeroUpdateProbabilityCachingIsFree(t *testing.T) {
	for _, m := range []Model{Model1, Model2} {
		p := Default().WithUpdateProbability(0)
		read := p.C2 * p.ProcSize()
		for _, s := range []Strategy{CacheInvalidate, UpdateCacheAVM, UpdateCacheRVM} {
			if got := Cost(m, s, p); math.Abs(got-read) > 1e-9 {
				t.Errorf("%v: %v cost at P=0 = %v, want read-only cost %v", m, s, got, read)
			}
		}
		// ...and all are far below Always Recompute.
		if rc := Cost(m, AlwaysRecompute, p); rc < 10*read {
			t.Errorf("%v: recompute %v unexpectedly close to read %v", m, rc, read)
		}
	}
}

// TestCacheInvalidatePlateau asserts the Figure 5 plateau: for large P the
// cached value is virtually never valid, so Cache and Invalidate costs
// slightly more than Always Recompute (the extra is the wasted write-back),
// and never more than Recompute plus the full write-back cost.
func TestCacheInvalidatePlateau(t *testing.T) {
	for _, m := range []Model{Model1, Model2} {
		p := Default().WithUpdateProbability(0.95)
		ci := CacheInvalidateCost(m, p)
		rc := RecomputeCost(m, p)
		if ci <= rc {
			t.Errorf("%v: C&I at P=0.95 = %v should exceed recompute %v", m, ci, rc)
		}
		if ceiling := rc + 2*p.C2*p.ProcSize(); ci > ceiling+1e-9 {
			t.Errorf("%v: C&I plateau %v exceeds recompute+writeback %v", m, ci, ceiling)
		}
	}
}

// TestUpdateCacheBlowsUpAtHighP asserts that Update Cache cost grows
// without bound as P -> 1 ("rises dramatically for large values of P")
// while Cache and Invalidate stays near its plateau.
func TestUpdateCacheBlowsUpAtHighP(t *testing.T) {
	p9 := Default().WithUpdateProbability(0.9)
	p99 := Default().WithUpdateProbability(0.99)
	for _, s := range []Strategy{UpdateCacheAVM, UpdateCacheRVM} {
		lo, hi := Cost(Model1, s, p9), Cost(Model1, s, p99)
		if hi < 5*lo {
			t.Errorf("%v: cost should explode from P=0.9 (%v) to P=0.99 (%v)", s, lo, hi)
		}
	}
	ci9, ci99 := CacheInvalidateCost(Model1, p9), CacheInvalidateCost(Model1, p99)
	if ci99 > 1.2*ci9 {
		t.Errorf("C&I should plateau: P=0.9 %v vs P=0.99 %v", ci9, ci99)
	}
}

// TestUpdateCacheWinsMidRange asserts Figure 5's main claim: with free
// invalidation there is a significant gap between Cache and Invalidate and
// Update Cache for 0 < P < 0.7, with Update Cache cheaper.
func TestUpdateCacheWinsMidRange(t *testing.T) {
	for _, up := range []float64{0.1, 0.3, 0.5, 0.6} {
		p := Default().WithUpdateProbability(up)
		avm := AVMCost(Model1, p)
		ci := CacheInvalidateCost(Model1, p)
		if avm >= ci {
			t.Errorf("P=%v: AVM %v should beat C&I %v", up, avm, ci)
		}
	}
}

// TestCinvalSensitivity asserts the Figure 4 vs Figure 5 contrast: with the
// naive two-I/O invalidation (C_inval = 2·C2 = 60ms) Cache and Invalidate
// is drastically worse than with free invalidation.
func TestCinvalSensitivity(t *testing.T) {
	p := Default().WithUpdateProbability(0.5)
	free := CacheInvalidateCost(Model1, p)
	p.CInval = 60
	costly := CacheInvalidateCost(Model1, p)
	if costly < 1.1*free {
		t.Errorf("C_inval=60ms cost %v should clearly exceed C_inval=0 cost %v", costly, free)
	}
	// The T3 term alone: (k/q)·n·P_inval·C_inval with P_inval ≈ 1-(0.999)^50.
	pinval := 1 - math.Pow(0.999, 50)
	wantT3 := 1 * 200 * pinval * 60
	if got := costly - free; math.Abs(got-wantT3) > 1e-6 {
		t.Errorf("invalidation overhead = %v, want T3 = %v", got, wantT3)
	}
}

// TestPaperSpeedupClaims asserts section 8's quantitative claim: "using
// f = 0.0001, with P = 0.1, Cache and Invalidate and Update Cache
// outperform Always Recompute by factors of approximately 5 and 7". The
// scan's constants are approximate, so we accept the right neighbourhood:
// C&I in [3, 7] and Update Cache in [5, 9].
func TestPaperSpeedupClaims(t *testing.T) {
	p := Default().WithUpdateProbability(0.1)
	p.F = 0.0001
	rc := RecomputeCost(Model1, p)
	ciFactor := rc / CacheInvalidateCost(Model1, p)
	ucFactor := rc / AVMCost(Model1, p)
	if ciFactor < 3 || ciFactor > 7 {
		t.Errorf("C&I speedup factor = %.2f, want ~5", ciFactor)
	}
	if ucFactor < 5 || ucFactor > 9 {
		t.Errorf("Update Cache speedup factor = %.2f, want ~7", ucFactor)
	}
	if ucFactor <= ciFactor {
		t.Errorf("Update Cache factor %.2f should exceed C&I factor %.2f", ucFactor, ciFactor)
	}
}

// TestModel1SharingRVMvsAVM asserts the Figure 11 result: in model 1, RVM
// only becomes comparable to AVM when almost every P2 procedure has a
// shared subexpression.
func TestModel1SharingRVMvsAVM(t *testing.T) {
	p := Default()
	for _, sf := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		p.SF = sf
		if RVMCost(Model1, p) <= AVMCost(Model1, p) {
			t.Errorf("SF=%v: RVM should not beat AVM in model 1", sf)
		}
	}
	p.SF = 1
	if RVMCost(Model1, p) > AVMCost(Model1, p) {
		t.Errorf("SF=1: RVM %v should be at least as cheap as AVM %v in model 1",
			RVMCost(Model1, p), AVMCost(Model1, p))
	}
}

// TestModel2SharingCrossover asserts the Figure 18 result: in model 2 the
// two Update Cache variants cost the same at SF ≈ 0.47, with RVM superior
// above and AVM superior below.
func TestModel2SharingCrossover(t *testing.T) {
	p := Default()
	diff := func(sf float64) float64 {
		p.SF = sf
		return AVMCost(Model2, p) - RVMCost(Model2, p)
	}
	if diff(0.2) >= 0 {
		t.Error("SF=0.2: AVM should beat RVM in model 2")
	}
	if diff(0.8) <= 0 {
		t.Error("SF=0.8: RVM should beat AVM in model 2")
	}
	// Bisect for the crossover.
	lo, hi := 0.2, 0.8
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if diff(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	if cross := (lo + hi) / 2; cross < 0.40 || cross > 0.55 {
		t.Errorf("model 2 AVM/RVM crossover at SF=%.3f, paper reports ~0.47", cross)
	}
}

// TestSharingFactorMonotonicity: increasing SF makes RVM cheaper and leaves
// AVM unchanged (section 8, point 1).
func TestSharingFactorMonotonicity(t *testing.T) {
	for _, m := range []Model{Model1, Model2} {
		p := Default()
		prev := math.Inf(1)
		avm0 := AVMCost(m, p)
		for _, sf := range LinSpace(0, 1, 11) {
			p.SF = sf
			rvm := RVMCost(m, p)
			if rvm > prev+1e-9 {
				t.Errorf("%v: RVM cost increased with SF at %v", m, sf)
			}
			prev = rvm
			if got := AVMCost(m, p); got != avm0 {
				t.Errorf("%v: AVM cost depends on SF (%v vs %v)", m, got, avm0)
			}
		}
	}
}

// TestLargeObjectsFavorUpdateCache asserts Figure 6's claim: for f = 0.01
// and low update probability, incrementally updating a large object beats
// invalidate-and-recompute by a wide margin.
func TestLargeObjectsFavorUpdateCache(t *testing.T) {
	p := Default().WithUpdateProbability(0.1)
	p.F = 0.01
	avm := AVMCost(Model1, p)
	ci := CacheInvalidateCost(Model1, p)
	if avm >= ci/1.5 {
		t.Errorf("large objects: AVM %v should clearly beat C&I %v", avm, ci)
	}
}

// TestSmallObjectsCacheInvalCompetitive asserts Figure 7's claim: for
// f = 0.0001, Cache and Invalidate is very competitive with Update Cache
// (within 2x over the whole sensible range of P) and safer at high P.
func TestSmallObjectsCacheInvalCompetitive(t *testing.T) {
	base := Default()
	base.F = 0.0001
	for _, up := range []float64{0.1, 0.3, 0.5} {
		p := base.WithUpdateProbability(up)
		ci := CacheInvalidateCost(Model1, p)
		uc := math.Min(AVMCost(Model1, p), RVMCost(Model1, p))
		if ci > 2*uc {
			t.Errorf("P=%v: C&I %v not within 2x of Update Cache %v", up, ci, uc)
		}
	}
	p := base.WithUpdateProbability(0.95)
	if ci, uc := CacheInvalidateCost(Model1, p), AVMCost(Model1, p); ci >= uc {
		t.Errorf("P=0.95 small objects: C&I %v should beat Update Cache %v", ci, uc)
	}
}

// TestHighLocalityHelpsCacheInvalidate asserts Figure 9's claim: lowering Z
// (more skew) reduces C&I cost but leaves Update Cache unchanged.
func TestHighLocalityHelpsCacheInvalidate(t *testing.T) {
	def := Default().WithUpdateProbability(0.3)
	skew := def
	skew.Z = 0.05
	if CacheInvalidateCost(Model1, skew) >= CacheInvalidateCost(Model1, def) {
		t.Error("higher locality should reduce C&I cost")
	}
	if AVMCost(Model1, skew) != AVMCost(Model1, def) {
		t.Error("locality must not affect Update Cache cost")
	}
	if RecomputeCost(Model1, skew) != RecomputeCost(Model1, def) {
		t.Error("locality must not affect Always Recompute cost")
	}
}

// TestManyObjectsSteepenUpdateCache asserts Figure 10's claim: multiplying
// the number of procedures steepens the Update Cache cost slope in P.
func TestManyObjectsSteepenUpdateCache(t *testing.T) {
	small := Default().WithUpdateProbability(0.5)
	big := small
	big.N1, big.N2 = 1000, 1000
	slope := func(p Params) float64 {
		lo := AVMCost(Model1, p.WithUpdateProbability(0.2))
		hi := AVMCost(Model1, p.WithUpdateProbability(0.6))
		return hi - lo
	}
	if slope(big) <= slope(small) {
		t.Error("more objects should steepen Update Cache cost growth")
	}
}

// TestSingleTupleObjects reproduces Figure 8's setup (N1=100, N2=0,
// f=1/N): Cache and Invalidate tracks Update Cache closely at low P and
// wins at high P.
func TestSingleTupleObjects(t *testing.T) {
	base := Default()
	base.N1, base.N2 = 100, 0
	base.F = 1 / base.N
	p := base.WithUpdateProbability(0.2)
	ci := CacheInvalidateCost(Model1, p)
	uc := AVMCost(Model1, p)
	if ci > 2*uc {
		t.Errorf("single-tuple objects at P=0.2: C&I %v vs UC %v should be close", ci, uc)
	}
	p = base.WithUpdateProbability(0.95)
	if ci, uc := CacheInvalidateCost(Model1, p), AVMCost(Model1, p); ci >= uc {
		t.Errorf("single-tuple objects at P=0.95: C&I %v should beat UC %v", ci, uc)
	}
}

// TestComponentsSumToTotals ties the exported component breakdowns to the
// totals.
func TestComponentsSumToTotals(t *testing.T) {
	p := Default()
	for _, m := range []Model{Model1, Model2} {
		if got, want := totalOf(p, AVMComponents(m, p)), AVMCost(m, p); got != want {
			t.Errorf("%v AVM components sum %v != total %v", m, got, want)
		}
		if got, want := totalOf(p, RVMComponents(m, p)), RVMCost(m, p); got != want {
			t.Errorf("%v RVM components sum %v != total %v", m, got, want)
		}
	}
}

// TestComponentValuesModel1 pins the section 4.3/4.4 component tables at
// the defaults to hand-computed values.
func TestComponentValuesModel1(t *testing.T) {
	p := Default()
	want := map[string]float64{
		"C_screenP1":  5,   // 100·1·2·0.001·25
		"C_screenP2":  5,   //
		"C_refreshP1": 300, // 100·2·30·y(100, 2.5, 0.05)=100·2·30·0.05
		"C_refreshP2": 30,  // 100·2·30·0.005
		"C_overhead":  10,  // 1·0.05·200
		"C_join":      150, // 100·30·0.05
		"C_read":      60,  // 30·2
	}
	for _, c := range AVMComponents(Model1, p) {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected AVM component %q", c.Name)
			continue
		}
		if math.Abs(c.Value-w) > 1e-9 {
			t.Errorf("AVM %s = %v, want %v", c.Name, c.Value, w)
		}
	}
	wantR := map[string]float64{
		"C_screenP1":      5,
		"C_screenP2-Rete": 2.5, // (1-SF)=0.5 of 5
		"C_refreshP1":     300,
		"C_refresh-α":     150, // 0.5·100·2·30·0.05
		"C_refreshP2":     30,
		"C_join-α":        150,
		"C_read":          60,
	}
	for _, c := range RVMComponents(Model1, p) {
		w, ok := wantR[c.Name]
		if !ok {
			t.Errorf("unexpected RVM component %q", c.Name)
			continue
		}
		if math.Abs(c.Value-w) > 1e-9 {
			t.Errorf("RVM %s = %v, want %v", c.Name, c.Value, w)
		}
	}
}

// TestModel2JoinCostsDiffer: the only formula difference between models for
// RVM is C_join-α -> C_join-β, and for AVM is the extra Y7 term.
func TestModel2JoinCostsDiffer(t *testing.T) {
	p := Default()
	avm1, avm2 := AVMCost(Model1, p), AVMCost(Model2, p)
	if avm2 <= avm1 {
		t.Errorf("model 2 AVM %v should cost more than model 1 %v (extra join)", avm2, avm1)
	}
	// At the defaults Y8 = Y5 (both are k<=1 cases), so RVM is unchanged.
	if rvm1, rvm2 := RVMCost(Model1, p), RVMCost(Model2, p); math.Abs(rvm1-rvm2) > 1e-9 {
		t.Errorf("RVM model 1 %v vs model 2 %v should coincide at defaults", rvm1, rvm2)
	}
}

// TestCostDispatch covers the Cost switch including the invalid strategy.
func TestCostDispatch(t *testing.T) {
	p := Default()
	for _, s := range Strategies {
		if got := Cost(Model1, s, p); math.IsNaN(got) || got < 0 {
			t.Errorf("Cost(%v) = %v", s, got)
		}
	}
	if got := Cost(Model1, Strategy(99), p); !math.IsNaN(got) {
		t.Errorf("invalid strategy should yield NaN, got %v", got)
	}
	all := AllCosts(Model1, p)
	for _, s := range Strategies {
		if all[s] != Cost(Model1, s, p) {
			t.Errorf("AllCosts[%v] mismatch", s)
		}
	}
}

func TestStringers(t *testing.T) {
	if Model1.String() != "model 1" || Model2.String() != "model 2" || Model(9).String() != "model ?" {
		t.Error("Model.String mismatch")
	}
	names := map[Strategy]string{
		AlwaysRecompute: "Always Recompute",
		CacheInvalidate: "Cache and Invalidate",
		UpdateCacheAVM:  "Update Cache (AVM)",
		UpdateCacheRVM:  "Update Cache (RVM)",
		Strategy(42):    "unknown strategy",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
