package costmodel

import "testing"

func BenchmarkAllCosts(b *testing.B) {
	p := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AllCosts(Model1, p)
	}
}

func BenchmarkWinnerGrid(b *testing.B) {
	base := Default()
	ps := LinSpace(0.02, 0.95, 16)
	fs := LogSpace(1e-5, 0.05, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WinnerGrid(Model1, base, ps, fs)
	}
}

func BenchmarkYaoExact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		YaoExact(100_000, 2500, 1000)
	}
}

func BenchmarkPagesTouched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PagesTouched(100_000, 2500, 1000)
	}
}
