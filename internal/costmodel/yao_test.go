package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPagesTouchedPiecewise(t *testing.T) {
	tests := []struct {
		name    string
		n, m, k float64
		want    float64
	}{
		{"zero records", 1000, 100, 0, 0},
		{"fractional k is expectation", 1000, 100, 0.05, 0.05},
		{"k exactly one", 1000, 100, 1, 1},
		{"sub-page file", 10, 0.25, 5, 1},
		{"small file uses min(k,m)", 60, 1.5, 4, 1.5},
		{"small file uses min(k,m) other side", 60, 1.5, 1.2, 1.2},
		{"zero pages", 0, 0, 10, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PagesTouched(tt.n, tt.m, tt.k); got != tt.want {
				t.Errorf("PagesTouched(%v, %v, %v) = %v, want %v", tt.n, tt.m, tt.k, got, tt.want)
			}
		})
	}
}

func TestCardenasMatchesKnownValue(t *testing.T) {
	// y(10000, 250, 100): 250 pages, Cardenas = 250(1-(1-1/250)^100).
	got := Cardenas(250, 100)
	want := 250 * (1 - math.Pow(1-1.0/250, 100))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Cardenas(250, 100) = %v, want %v", got, want)
	}
	if got < 82 || got > 83 {
		t.Fatalf("Cardenas(250, 100) = %v, want about 82.5", got)
	}
}

func TestPagesTouchedUsesCardenasForLargeFiles(t *testing.T) {
	got := PagesTouched(10000, 250, 100)
	if want := Cardenas(250, 100); got != want {
		t.Fatalf("PagesTouched = %v, want Cardenas value %v", got, want)
	}
}

func TestYaoExactBounds(t *testing.T) {
	// Exact Yao never exceeds min(k, m) pages... actually it never exceeds
	// m, and never exceeds k (each record touches at most one new page).
	cases := []struct{ n, m, k float64 }{
		{1000, 25, 10}, {1000, 25, 500}, {4000, 100, 4000},
		{40, 1, 5}, {400, 10, 1},
	}
	for _, c := range cases {
		y := YaoExact(c.n, c.m, c.k)
		if y < 0 || y > c.m+1e-9 || y > c.k+1e-9 {
			t.Errorf("YaoExact(%v,%v,%v) = %v out of bounds", c.n, c.m, c.k, y)
		}
	}
}

func TestYaoExactAllRecordsTouchesAllPages(t *testing.T) {
	if got := YaoExact(1000, 25, 1000); math.Abs(got-25) > 1e-9 {
		t.Fatalf("selecting every record should touch every page, got %v", got)
	}
}

// TestCardenasCloseToExact checks Appendix A's claim that Cardenas'
// approximation is very close to the exact Yao function when the blocking
// factor exceeds 10 and m is not near 1.
func TestCardenasCloseToExact(t *testing.T) {
	for _, m := range []float64{10, 25, 100, 250, 2500} {
		for _, frac := range []float64{0.001, 0.01, 0.1, 0.5, 1} {
			n := m * 40 // blocking factor 40, as in the paper's defaults
			k := math.Max(1, n*frac)
			exact := YaoExact(n, m, k)
			approx := Cardenas(m, k)
			if exact == 0 {
				continue
			}
			if rel := math.Abs(exact-approx) / exact; rel > 0.02 {
				t.Errorf("m=%v k=%v: exact %v vs Cardenas %v (rel err %.3f)", m, k, exact, approx, rel)
			}
		}
	}
}

// Property: PagesTouched is monotone in k (touching more records can never
// touch fewer pages) and bounded by m and k.
func TestPagesTouchedProperties(t *testing.T) {
	f := func(mSeed, kSeed uint16, dSeed uint8) bool {
		m := 1 + float64(mSeed)/8     // pages in [1, ~8193]
		k := float64(kSeed) / 4       // records in [0, ~16384]
		d := float64(dSeed)/64 + 0.01 // increment
		n := m * 40                   // blocking factor 40
		y1 := PagesTouched(n, m, k)
		y2 := PagesTouched(n, m, k+d)
		if y2 < y1-1e-12 {
			return false
		}
		if y1 > m+1e-9 || y1 > k+1e-9 && k >= 1 {
			// For k >= 1 the estimate must not exceed k; for k < 1 it is k.
			return false
		}
		return y1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogChooseDegenerate(t *testing.T) {
	if v := logChoose(5, 6); !math.IsInf(v, -1) {
		t.Fatalf("C(5,6) should be log-zero, got %v", v)
	}
	if v := logChoose(5, -1); !math.IsInf(v, -1) {
		t.Fatalf("C(5,-1) should be log-zero, got %v", v)
	}
	if v := logChoose(5, 0); math.Abs(v) > 1e-12 {
		t.Fatalf("ln C(5,0) should be 0, got %v", v)
	}
}
