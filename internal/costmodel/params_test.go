package costmodel

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultDerivedQuantities(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("default parameters invalid: %v", err)
	}
	if got := p.TuplesPerBlock(); got != 40 {
		t.Errorf("TuplesPerBlock = %v, want 40", got)
	}
	if got := p.Blocks(); got != 2500 {
		t.Errorf("Blocks = %v, want 2500", got)
	}
	if got := p.FStar(); math.Abs(got-0.0001) > 1e-12 {
		t.Errorf("FStar = %v, want 0.0001", got)
	}
	if got := p.NumProcs(); got != 200 {
		t.Errorf("NumProcs = %v, want 200", got)
	}
	if got := p.UpdatesPerQuery(); got != 1 {
		t.Errorf("UpdatesPerQuery = %v, want 1", got)
	}
	if got := p.UpdateProbability(); got != 0.5 {
		t.Errorf("UpdateProbability = %v, want 0.5", got)
	}
	// fN = 100 qualifying tuples; fanout 200; one level.
	if got := p.BTreeHeight(); got != 1 {
		t.Errorf("BTreeHeight = %v, want 1", got)
	}
	// P1: ceil(0.001*2500) = 3 pages; P2: ceil(0.0001*2500) = 1 page.
	if got := p.ProcSize(); got != 2 {
		t.Errorf("ProcSize = %v, want 2", got)
	}
}

func TestPaperSizeClaims(t *testing.T) {
	p := Default()
	// "type P1 procedures contain fN = 100 tuples. Type P2 procedures
	// contain f*N = 10 tuples for the default parameters."
	if got := p.F * p.N; got != 100 {
		t.Errorf("P1 tuples = %v, want 100", got)
	}
	if got := p.FStar() * p.N; math.Abs(got-10) > 1e-9 {
		t.Errorf("P2 tuples = %v, want 10", got)
	}
}

func TestWithUpdateProbability(t *testing.T) {
	p := Default()
	for _, up := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		q := p.WithUpdateProbability(up)
		if got := q.UpdateProbability(); math.Abs(got-up) > 1e-12 {
			t.Errorf("round trip P=%v gave %v", up, got)
		}
		if q.Q != p.Q {
			t.Errorf("Q changed from %v to %v", p.Q, q.Q)
		}
	}
}

func TestWithUpdateProbabilityPanicsOutOfRange(t *testing.T) {
	for _, up := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithUpdateProbability(%v) did not panic", up)
				}
			}()
			Default().WithUpdateProbability(up)
		}()
	}
}

func TestBTreeHeightGrowsWithResultSize(t *testing.T) {
	p := Default()
	p.F = 1 // full relation: 100,000 tuples, fanout 200 -> ceil(log200 1e5)=3
	if got := p.BTreeHeight(); got != 3 {
		t.Errorf("BTreeHeight(f=1) = %v, want 3", got)
	}
	p.F = 1.0 / p.N // single tuple
	if got := p.BTreeHeight(); got != 1 {
		t.Errorf("BTreeHeight(single tuple) = %v, want 1", got)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.S = 0 },
		func(p *Params) { p.S = p.B + 1 },
		func(p *Params) { p.D = 0 },
		func(p *Params) { p.Q = 0 },
		func(p *Params) { p.K = -1 },
		func(p *Params) { p.F = 1.5 },
		func(p *Params) { p.F2 = -0.1 },
		func(p *Params) { p.FR2 = -1 },
		func(p *Params) { p.C2 = -1 },
		func(p *Params) { p.N1, p.N2 = 0, 0 },
		func(p *Params) { p.SF = 2 },
		func(p *Params) { p.Z = 0 },
		func(p *Params) { p.Z = 1 },
	}
	for i, mutate := range bad {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid parameters %+v", i, p)
		} else if !strings.Contains(err.Error(), "costmodel") {
			t.Errorf("case %d: error %q lacks package prefix", i, err)
		}
	}
}

func TestProcSizeNoProcedures(t *testing.T) {
	p := Default()
	p.N1, p.N2 = 0, 0
	if got := p.ProcSize(); got != 0 {
		t.Errorf("ProcSize with no procedures = %v, want 0", got)
	}
}

func TestLinSpaceLogSpace(t *testing.T) {
	lin := LinSpace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(lin[i]-want[i]) > 1e-12 {
			t.Fatalf("LinSpace = %v, want %v", lin, want)
		}
	}
	log := LogSpace(0.001, 0.1, 3)
	wantLog := []float64{0.001, 0.01, 0.1}
	for i := range wantLog {
		if math.Abs(log[i]-wantLog[i])/wantLog[i] > 1e-9 {
			t.Fatalf("LogSpace = %v, want %v", log, wantLog)
		}
	}
	for _, fn := range []func(){
		func() { LinSpace(1, 0, 5) },
		func() { LinSpace(0, 1, 1) },
		func() { LogSpace(0, 1, 5) },
		func() { LogSpace(0.1, 0.01, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for degenerate spacing")
				}
			}()
			fn()
		}()
	}
}
