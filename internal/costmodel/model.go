package costmodel

import "math"

// Model selects the procedure-population model being analyzed.
type Model int

const (
	// Model1 makes P2 procedures two-way joins R1 ⋈ R2 (paper section 4).
	Model1 Model = 1
	// Model2 makes P2 procedures three-way joins R1 ⋈ R2 ⋈ R3 (section 6).
	Model2 Model = 2
)

// String returns "model 1" or "model 2".
func (m Model) String() string {
	switch m {
	case Model1:
		return "model 1"
	case Model2:
		return "model 2"
	default:
		return "model ?"
	}
}

// Strategy identifies one of the four procedure query-processing strategies
// compared by the paper.
type Strategy int

const (
	// AlwaysRecompute executes the procedure's compiled plan on every access.
	AlwaysRecompute Strategy = iota
	// CacheInvalidate serves a cached result while valid and recomputes it
	// on first access after an invalidating update (i-lock conflict).
	CacheInvalidate
	// UpdateCacheAVM keeps the cached result current using non-shared
	// algebraic (differential) view maintenance.
	UpdateCacheAVM
	// UpdateCacheRVM keeps the cached result current using the shared Rete
	// view maintenance network.
	UpdateCacheRVM

	// NumStrategies is the count of strategies, for iteration.
	NumStrategies = 4
)

// Strategies lists all four strategies in presentation order.
var Strategies = [NumStrategies]Strategy{
	AlwaysRecompute, CacheInvalidate, UpdateCacheAVM, UpdateCacheRVM,
}

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case AlwaysRecompute:
		return "Always Recompute"
	case CacheInvalidate:
		return "Cache and Invalidate"
	case UpdateCacheAVM:
		return "Update Cache (AVM)"
	case UpdateCacheRVM:
		return "Update Cache (RVM)"
	default:
		return "unknown strategy"
	}
}

// QueryP1Cost returns C_queryP1, the cost to compute a type-P1 procedure
// from scratch: screen f·N tuples at C1 each, read ⌈f·b⌉ data pages and
// descend H1 index levels at C2 each.
func (p Params) QueryP1Cost() float64 {
	fn := p.F * p.N
	return p.C1*fn + p.C2*math.Ceil(p.F*p.Blocks()) + p.C2*p.BTreeHeight()
}

// QueryP2Cost returns the cost to compute a type-P2 procedure from scratch.
//
// Model 1 (C_queryP2): a B-tree index scan of R1 followed by a hash-index
// probe join into R2 touching Y1 = y(fR2·N, fR2·b, f·N) pages, with f·N
// further predicate screens.
//
// Model 2 (C_queryP2'): additionally joins the result to R3 through R3's
// hash index, touching Y6 = y(fR3·N, fR3·b, f·N) pages with another f·N
// screens. (The scan prints Y6's first argument as f_R·N; it must be
// f_R3·N.)
func (p Params) QueryP2Cost(m Model) float64 {
	fn := p.F * p.N
	b := p.Blocks()
	y1 := PagesTouched(p.FR2*p.N, p.FR2*b, fn)
	cost := p.QueryP1Cost() + p.C1*fn + p.C2*y1
	if m == Model2 {
		y6 := PagesTouched(p.FR3*p.N, p.FR3*b, fn)
		cost += p.C2*y6 + p.C1*fn
	}
	return cost
}

// ProcessQueryCost returns C_ProcessQuery, the expected cost to compute the
// value of one procedure drawn at random from the N1+N2 population.
func (p Params) ProcessQueryCost(m Model) float64 {
	n := p.NumProcs()
	if n == 0 {
		return 0
	}
	return p.N1/n*p.QueryP1Cost() + p.N2/n*p.QueryP2Cost(m)
}

// RecomputeCost returns TOT_Recompute, the expected cost per procedure
// access under Always Recompute: exactly one from-scratch computation.
func RecomputeCost(m Model, p Params) float64 {
	return p.ProcessQueryCost(m)
}

// CacheInvalidateDetail carries the intermediate quantities of the Cache
// and Invalidate analysis (section 4.2), useful for diagnostics and tests.
type CacheInvalidateDetail struct {
	// T1 is the cost paid when the cached value is invalid: recompute the
	// procedure and write the result back (read-modify-write of ProcSize
	// pages).
	T1 float64
	// T2 is the cost paid when the cached value is valid: read it.
	T2 float64
	// T3 is the per-query share of the cost of recording invalidations.
	T3 float64
	// PInval is the probability that one update transaction invalidates a
	// given procedure: 1 − (1−f)^(2l). (The scan prints the exponent as 2;
	// each update produces 2l old/new tuple values, each matching the
	// procedure's predicate with probability f.)
	PInval float64
	// IP is the probability that the cache is invalid when a procedure is
	// accessed, mixing frequently- and seldom-accessed procedures by the
	// locality parameter Z.
	IP float64
}

// CacheInvalidateCosts computes the section 4.2 analysis for model m.
func CacheInvalidateCosts(m Model, p Params) CacheInvalidateDetail {
	var d CacheInvalidateDetail
	d.T1 = p.ProcessQueryCost(m) + 2*p.C2*p.ProcSize()
	d.T2 = p.C2 * p.ProcSize()

	d.PInval = 1 - powOneMinus(p.F, 2*p.L)
	d.T3 = p.UpdatesPerQuery() * p.NumProcs() * d.PInval * p.CInval

	// Expected number of update transactions between accesses to one
	// frequently-accessed (X) and one seldom-accessed (Y) procedure.
	n := p.NumProcs()
	kq := p.UpdatesPerQuery()
	x := n * p.Z / (1 - p.Z) * kq
	y := n * (1 - p.Z) / p.Z * kq
	z1 := 1 - powOneMinus(p.F, x*2*p.L)
	z2 := 1 - powOneMinus(p.F, y*2*p.L)
	d.IP = (1-p.Z)*z1 + p.Z*z2
	return d
}

// CacheInvalidateCost returns TOT_CacheInval, the expected cost per access
// under Cache and Invalidate: IP·T1 + (1−IP)·T2 + T3.
func CacheInvalidateCost(m Model, p Params) float64 {
	d := CacheInvalidateCosts(m, p)
	return d.IP*d.T1 + (1-d.IP)*d.T2 + d.T3
}

// powOneMinus returns (1−f)^e computed stably for tiny f and huge e.
func powOneMinus(f, e float64) float64 {
	if f >= 1 {
		return 0
	}
	return math.Exp(e * math.Log1p(-f))
}

// Component is one named term of an Update Cache cost formula.
type Component struct {
	// Name is the paper's symbol for the term, e.g. "C_refreshP1".
	Name string
	// PerUpdate reports whether the term is paid once per update
	// transaction (true) or once per procedure access (false). Per-update
	// terms are multiplied by k/q when forming the per-access total.
	PerUpdate bool
	// Value is the term's cost in milliseconds.
	Value float64
}

// avmShared returns the component terms common to AVM in both models:
// screening, P1 refresh, P2 refresh, delta-set overhead and result read.
func avmShared(p Params) (screenP1, screenP2, refreshP1, refreshP2, overhead, read float64) {
	b := p.Blocks()
	twoFL := 2 * p.F * p.L
	screenP1 = p.N1 * p.C1 * twoFL
	screenP2 = p.N2 * p.C1 * twoFL
	y3 := PagesTouched(p.F*p.N, p.F*b, twoFL)
	refreshP1 = p.N1 * 2 * p.C2 * y3
	fs := p.FStar()
	y4 := PagesTouched(fs*p.N, fs*b, 2*fs*p.L)
	refreshP2 = p.N2 * 2 * p.C2 * y4
	overhead = p.C3 * twoFL * p.NumProcs()
	read = p.C2 * p.ProcSize()
	return
}

// AVMComponents returns the cost components of Update Cache with
// non-shared algebraic view maintenance (section 4.3 table; section 6.3
// replaces C_join with C_join'). Refreshes are read-modify-write, so they
// cost 2·C2 per page (consistent with the paper's explicit
// C_refresh-α = N2(1−SF)·2·C2·Y3 and C_WriteCache = 2·C2·ProcSize).
func AVMComponents(m Model, p Params) []Component {
	screenP1, screenP2, refreshP1, refreshP2, overhead, read := avmShared(p)
	b := p.Blocks()
	twoFL := 2 * p.F * p.L
	y2 := PagesTouched(p.FR2*p.N, p.FR2*b, twoFL)
	join := p.N2 * p.C2 * y2
	joinName := "C_join"
	if m == Model2 {
		y7 := PagesTouched(p.FR3*p.N, p.FR3*b, twoFL)
		join = p.N2 * p.C2 * (y2 + y7)
		joinName = "C_join'"
	}
	return []Component{
		{"C_screenP1", true, screenP1},
		{"C_screenP2", true, screenP2},
		{"C_refreshP1", true, refreshP1},
		{"C_refreshP2", true, refreshP2},
		{"C_overhead", true, overhead},
		{joinName, true, join},
		{"C_read", false, read},
	}
}

// RVMComponents returns the cost components of Update Cache with shared
// Rete view maintenance (section 4.4 table; section 6.4 replaces C_join-α
// with C_join-β). A fraction SF of P2 procedures reuse a P1 procedure's
// C_f(R1) α-memory, so screening and left-α refresh are paid only for the
// remaining 1−SF.
func RVMComponents(m Model, p Params) []Component {
	screenP1, _, refreshP1, refreshP2, _, read := avmShared(p)
	b := p.Blocks()
	twoFL := 2 * p.F * p.L
	unshared := 1 - p.SF

	screenP2 := p.N2 * unshared * p.C1 * twoFL
	y3 := PagesTouched(p.F*p.N, p.F*b, twoFL)
	refreshAlpha := p.N2 * unshared * 2 * p.C2 * y3

	var join float64
	var joinName string
	if m == Model1 {
		// Probe the right α-memory (R2 tuples passing C_f2): f** = f2·fR2.
		fss := p.F2 * p.FR2
		y5 := PagesTouched(fss*p.N, fss*b, twoFL)
		join = p.N2 * p.C2 * y5
		joinName = "C_join-α"
	} else {
		// Probe the right β-memory (R2 ⋈ R3 tuples passing C_f2):
		// f_R3** = f2·fR3.
		fss := p.F2 * p.FR3
		y8 := PagesTouched(fss*p.N, fss*b, twoFL)
		join = p.N2 * p.C2 * y8
		joinName = "C_join-β"
	}
	return []Component{
		{"C_screenP1", true, screenP1},
		{"C_screenP2-Rete", true, screenP2},
		{"C_refreshP1", true, refreshP1},
		{"C_refresh-α", true, refreshAlpha},
		{"C_refreshP2", true, refreshP2},
		{joinName, true, join},
		{"C_read", false, read},
	}
}

// totalOf folds a component list into a per-access cost: per-access terms
// plus k/q times the per-update terms.
func totalOf(p Params, comps []Component) float64 {
	kq := p.UpdatesPerQuery()
	var total float64
	for _, c := range comps {
		if c.PerUpdate {
			total += kq * c.Value
		} else {
			total += c.Value
		}
	}
	return total
}

// AVMCost returns TOT_non-shared, the expected cost per procedure access
// under Update Cache with algebraic view maintenance.
func AVMCost(m Model, p Params) float64 {
	return totalOf(p, AVMComponents(m, p))
}

// RVMCost returns TOT_shared, the expected cost per procedure access under
// Update Cache with Rete view maintenance.
func RVMCost(m Model, p Params) float64 {
	return totalOf(p, RVMComponents(m, p))
}

// Cost dispatches to the per-strategy cost function.
func Cost(m Model, s Strategy, p Params) float64 {
	switch s {
	case AlwaysRecompute:
		return RecomputeCost(m, p)
	case CacheInvalidate:
		return CacheInvalidateCost(m, p)
	case UpdateCacheAVM:
		return AVMCost(m, p)
	case UpdateCacheRVM:
		return RVMCost(m, p)
	default:
		return math.NaN()
	}
}

// AllCosts returns the per-access cost of every strategy, indexed by
// Strategy.
func AllCosts(m Model, p Params) [NumStrategies]float64 {
	var out [NumStrategies]float64
	for _, s := range Strategies {
		out[s] = Cost(m, s, p)
	}
	return out
}
