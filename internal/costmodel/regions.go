package costmodel

import "math"

// This file computes the paper's "who wins where" maps: Figures 12, 13 and
// 19 partition the (update probability P, object size f) plane by the
// cheapest strategy, and Figures 14 and 15 mark where Cache and Invalidate
// is within a factor of two of the best Update Cache variant.

// Winner reports the cheapest strategy at one parameter point together
// with the full cost vector, so ties and margins can be inspected.
type Winner struct {
	// Best is the cheapest strategy (lowest index wins exact ties, so
	// Always Recompute is preferred to equally-priced caching, matching
	// the paper's "implement the simplest adequate method" advice).
	Best Strategy
	// Costs holds every strategy's cost at this point.
	Costs [NumStrategies]float64
}

// BestStrategy evaluates all four strategies at p and returns the winner.
func BestStrategy(m Model, p Params) Winner {
	w := Winner{Costs: AllCosts(m, p)}
	for _, s := range Strategies {
		if w.Costs[s] < w.Costs[w.Best] {
			w.Best = s
		}
	}
	return w
}

// Grid is a rectangular sweep over update probability (rows) and the
// object-size selectivity f (columns).
type Grid struct {
	// Ps are the update-probability row values, ascending.
	Ps []float64
	// Fs are the selectivity column values, ascending.
	Fs []float64
	// Cells[i][j] is the evaluation at P = Ps[i], f = Fs[j].
	Cells [][]Winner
}

// WinnerGrid sweeps base over the given P and f values and records the
// cheapest strategy at each point (Figures 12, 13, 19).
func WinnerGrid(m Model, base Params, ps, fs []float64) Grid {
	g := Grid{Ps: ps, Fs: fs, Cells: make([][]Winner, len(ps))}
	for i, up := range ps {
		g.Cells[i] = make([]Winner, len(fs))
		for j, f := range fs {
			pt := base.WithUpdateProbability(up)
			pt.F = f
			g.Cells[i][j] = BestStrategy(m, pt)
		}
	}
	return g
}

// UpdateCacheBest returns the cheaper of the two Update Cache variants at
// this cell.
func (w Winner) UpdateCacheBest() float64 {
	avm, rvm := w.Costs[UpdateCacheAVM], w.Costs[UpdateCacheRVM]
	if avm < rvm {
		return avm
	}
	return rvm
}

// CacheInvalWithinFactor reports whether Cache and Invalidate costs at most
// factor times the best Update Cache variant at this cell (Figures 14, 15
// use factor = 2).
func (w Winner) CacheInvalWithinFactor(factor float64) bool {
	return w.Costs[CacheInvalidate] <= factor*w.UpdateCacheBest()
}

// LogSpace returns n values spaced logarithmically from lo to hi inclusive.
// It panics unless 0 < lo < hi and n >= 2.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic("costmodel: LogSpace requires 0 < lo < hi and n >= 2")
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	out[n-1] = hi
	return out
}

// LinSpace returns n values spaced linearly from lo to hi inclusive.
// It panics unless lo < hi and n >= 2.
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		panic("costmodel: LinSpace requires lo < hi and n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + step*float64(i)
	}
	out[n-1] = hi
	return out
}
