package costmodel

import "math"

// yaoUpperBound is U in Appendix A: below this many pages the min(k, m)
// special case is used instead of Cardenas' approximation, which degrades
// as m approaches 1.
const yaoUpperBound = 2

// PagesTouched returns y(n, m, k): the expected number of distinct pages
// accessed when k records are retrieved at random from a file of n records
// stored on m pages.
//
// It implements the piecewise approximation of the paper's Appendix A:
//
//   - k ≤ 1: a fractional expected record count touches k pages in
//     expectation (every stored object occupies at least one page, but the
//     *expected* page count of an access that happens with probability k
//     is k).
//   - k > 1 and m < 1: one page.
//   - k > 1 and m < U (= 2): min(k, m) pages.
//   - otherwise: Cardenas' approximation m·(1 − (1 − 1/m)^k).
//
// The n parameter is unused by the approximation but kept so call sites
// read exactly like the paper's y(n, m, k) expressions, and so the exact
// Yao formula (YaoExact) is a drop-in replacement in tests.
func PagesTouched(n, m, k float64) float64 {
	_ = n
	if k <= 0 || m <= 0 {
		return 0
	}
	if k <= 1 {
		return k
	}
	if m < 1 {
		return 1
	}
	if m < yaoUpperBound {
		return math.Min(k, m)
	}
	return Cardenas(m, k)
}

// Cardenas returns Cardenas' approximation m·(1 − (1 − 1/m)^k) to the Yao
// function. It is accurate when the blocking factor n/m is large (> 10)
// and m is not close to 1. The power is computed via log1p for numerical
// stability when m is large and k is huge.
func Cardenas(m, k float64) float64 {
	if m <= 0 || k <= 0 {
		return 0
	}
	return m * (1 - math.Exp(k*math.Log1p(-1/m)))
}

// YaoExact returns the exact Yao (1977) expected number of distinct pages
// touched when k records are selected without replacement from n records
// on m pages, each page holding p = n/m records:
//
//	y(n, m, k) = m · (1 − C(n−p, k) / C(n, k))
//
// Binomial coefficients are evaluated in log space so large n do not
// overflow. When k > n−p every page is touched. It is used by tests to
// bound the error of the Appendix A approximation, and is exported for
// callers that need the exact value.
func YaoExact(n, m, k float64) float64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	if m == 1 {
		return 1
	}
	p := n / m
	if k >= n-p {
		return m
	}
	// C(n-p, k)/C(n, k) in log space.
	logRatio := logChoose(n-p, k) - logChoose(n, k)
	return m * (1 - math.Exp(logRatio))
}

// logChoose returns ln C(a, b) using the log-gamma function.
func logChoose(a, b float64) float64 {
	if b < 0 || b > a {
		return math.Inf(-1)
	}
	la, _ := math.Lgamma(a + 1)
	lb, _ := math.Lgamma(b + 1)
	lab, _ := math.Lgamma(a - b + 1)
	return la - lb - lab
}
