// Package costmodel implements the closed-form analytical cost model of
// Hanson, "Processing Queries Against Database Procedures: A Performance
// Analysis" (UCB/ERL M87/68, SIGMOD 1988).
//
// The model predicts the expected cost, in milliseconds, of one access to a
// database procedure under four processing strategies:
//
//   - Always Recompute: run the procedure's compiled plan on every access.
//   - Cache and Invalidate: serve the cached result while valid; recompute
//     and refresh on access after an invalidating update.
//   - Update Cache / AVM: keep the cached result current with non-shared
//     algebraic (differential) view maintenance.
//   - Update Cache / RVM: keep the cached result current with a shared Rete
//     discrimination network.
//
// Two procedure populations are modeled. In both, type P1 procedures are
// single-relation selections on R1. In Model 1 type P2 procedures are 2-way
// joins (R1 ⋈ R2); in Model 2 they are 3-way joins (R1 ⋈ R2 ⋈ R3). Updates
// modify tuples of R1 only.
//
// All formulas follow sections 4 and 6 of the paper; the page-access
// estimate y(n, m, k) follows Appendix A. Known typos in the scanned text
// and their resolutions are documented in DESIGN.md and on the relevant
// functions.
package costmodel

import "math"

// Params holds every input parameter of the cost model, mirroring the
// paper's Figure 2 ("Procedure query cost parameters and default values").
// Zero values are not meaningful; start from Default and override fields.
type Params struct {
	// N is the number of tuples in relation R1.
	N float64
	// S is the tuple width in bytes (the same for base and result tuples).
	S float64
	// B is the block (disk page) size in bytes.
	B float64
	// D is the width in bytes of one B+-tree index record; the internal
	// fanout of the index on R1 is ⌊B/D⌋.
	D float64

	// K is the number of update transactions run against R1.
	K float64
	// L is the number of R1 tuples modified in place by each update
	// transaction (equivalently: L deletes plus L inserts).
	L float64
	// Q is the number of procedure accesses (queries).
	Q float64

	// F is the selectivity of the restriction term C_f(R1) that appears in
	// both P1 and P2 procedures. A P1 procedure therefore holds F·N tuples.
	F float64
	// F2 is the selectivity of the restriction term C_f2(R2) in P2
	// procedures. The probability that an invalidation of a P2 procedure is
	// "false" (the cached value did not really change) is 1−F2.
	F2 float64
	// FR2 is the size of R2 as a fraction of N.
	FR2 float64
	// FR3 is the size of R3 as a fraction of N (Model 2 only).
	FR3 float64

	// C1 is the CPU cost in ms to screen one record against a predicate.
	C1 float64
	// C2 is the cost in ms of one disk page read or write.
	C2 float64
	// C3 is the cost in ms per tuple per transaction to maintain the A_net
	// and D_net delta sets in AVM.
	C3 float64
	// CInval is the cost in ms to record the invalidation of one cached
	// procedure value (0 for battery-backed memory; 2·C2 for the naive
	// read-flag-write scheme).
	CInval float64

	// N1 and N2 are the numbers of P1-type and P2-type procedures.
	N1 float64
	N2 float64

	// SF is the sharing factor: the fraction of P2 procedures whose
	// C_f(R1) restriction is identical to some P1 procedure's, so that a
	// shared (Rete) maintenance algorithm can reuse that subexpression.
	SF float64

	// Z is the locality-of-reference skew: a fraction Z of the procedures
	// receives a fraction 1−Z of all accesses (Z = 0.2 means "20% of the
	// procedures get 80% of the references"; Z = 0.5 is uniform access).
	Z float64
}

// Default returns the paper's default parameter values (Figure 2).
//
// The paper's table omits Z; we use Z = 0.2, the example value given in the
// text of section 4.2 ("if Z = 0.2 then 20% of the procedures are accessed
// 80% of the time"). Figures 9 and 13 override it to 0.05.
func Default() Params {
	return Params{
		N:      100_000,
		S:      100,
		B:      4_000,
		D:      20,
		K:      100,
		L:      25,
		Q:      100,
		F:      0.001,
		F2:     0.1,
		FR2:    0.1,
		FR3:    0.1,
		C1:     1,
		C2:     30,
		C3:     1,
		CInval: 0,
		N1:     100,
		N2:     100,
		SF:     0.5,
		Z:      0.2,
	}
}

// TuplesPerBlock returns ⌊B/S⌋, the blocking factor of base and result
// relations.
func (p Params) TuplesPerBlock() float64 {
	return math.Floor(p.B / p.S)
}

// Blocks returns b, the number of blocks occupied by R1.
//
// The paper's Figure 2 prints "b = N/S", a typo for b = N/(B/S): with the
// default N = 100,000, S = 100 and B = 4,000 the text's page counts (e.g.
// ⌈f·b⌉ pages per P1 procedure) require b = 2,500.
func (p Params) Blocks() float64 {
	return p.N / p.TuplesPerBlock()
}

// FStar returns f* = f·f2, the combined selectivity of the two restriction
// terms of a P2 procedure; a P2 procedure holds f*·N tuples.
func (p Params) FStar() float64 {
	return p.F * p.F2
}

// NumProcs returns n = N1 + N2, the total number of stored procedures.
func (p Params) NumProcs() float64 {
	return p.N1 + p.N2
}

// UpdatesPerQuery returns k/q, the expected number of update transactions
// between consecutive procedure accesses.
func (p Params) UpdatesPerQuery() float64 {
	return p.K / p.Q
}

// UpdateProbability returns P = k/(k+q), the probability that a given
// operation in the workload is an update transaction.
func (p Params) UpdateProbability() float64 {
	return p.K / (p.K + p.Q)
}

// WithUpdateProbability returns a copy of p whose K is adjusted so that
// P = k/(k+q) equals the given value, holding Q fixed. It panics if
// up is outside [0, 1); P = 1 implies an infinite update rate, which the
// model (cost per query) cannot express.
func (p Params) WithUpdateProbability(up float64) Params {
	if up < 0 || up >= 1 {
		panic("costmodel: update probability must be in [0, 1)")
	}
	p.K = p.Q * up / (1 - up)
	return p
}

// BTreeHeight returns H1, the number of index levels traversed by the
// B+-tree descent that locates the first of the f·N qualifying R1 tuples:
// ⌈log_⌊B/D⌋(f·N)⌉, and at least 1 (even a single-tuple result requires one
// root access).
func (p Params) BTreeHeight() float64 {
	fanout := math.Floor(p.B / p.D)
	fn := p.F * p.N
	if fn <= 1 || fanout <= 1 {
		return 1
	}
	return math.Max(1, math.Ceil(math.Log(fn)/math.Log(fanout)))
}

// ProcSize returns the expected size in pages of one stored procedure
// result: the weighted average of ⌈f·b⌉ (type P1) and ⌈f*·b⌉ (type P2).
func (p Params) ProcSize() float64 {
	n := p.NumProcs()
	if n == 0 {
		return 0
	}
	b := p.Blocks()
	return p.N1/n*math.Ceil(p.F*b) + p.N2/n*math.Ceil(p.FStar()*b)
}

// Validate reports whether the parameter set is usable by the model,
// returning a descriptive error otherwise.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return errParam("N must be positive")
	case p.S <= 0 || p.B <= 0 || p.S > p.B:
		return errParam("need 0 < S <= B")
	case p.D <= 0 || p.D > p.B:
		return errParam("need 0 < D <= B")
	case p.Q <= 0:
		return errParam("Q must be positive (cost is per query)")
	case p.K < 0 || p.L < 0:
		return errParam("K and L must be non-negative")
	case p.F < 0 || p.F > 1 || p.F2 < 0 || p.F2 > 1:
		return errParam("selectivities F, F2 must be in [0, 1]")
	case p.FR2 < 0 || p.FR3 < 0:
		return errParam("FR2 and FR3 must be non-negative")
	case p.C1 < 0 || p.C2 < 0 || p.C3 < 0 || p.CInval < 0:
		return errParam("cost constants must be non-negative")
	case p.N1 < 0 || p.N2 < 0 || p.N1+p.N2 == 0:
		return errParam("need N1, N2 >= 0 and N1+N2 > 0")
	case p.SF < 0 || p.SF > 1:
		return errParam("SF must be in [0, 1]")
	case p.Z <= 0 || p.Z >= 1:
		return errParam("Z must be in (0, 1)")
	}
	return nil
}

type errParam string

func (e errParam) Error() string { return "costmodel: invalid parameters: " + string(e) }
