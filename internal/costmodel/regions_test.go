package costmodel

import "testing"

func winnerGridDefaults(m Model, base Params) Grid {
	ps := LinSpace(0.02, 0.9, 12)
	fs := LogSpace(1e-5, 0.05, 12)
	return WinnerGrid(m, base, ps, fs)
}

// TestWinnerGridShape asserts the qualitative layout of Figure 12: Always
// Recompute wins the high-P edge, Update Cache wins the low-P edge, and the
// P-range where Update Cache wins is narrower for large f than for small f.
func TestWinnerGridShape(t *testing.T) {
	g := winnerGridDefaults(Model1, Default())
	// Low-P row: caching strategies should win everywhere.
	for j := range g.Fs {
		if w := g.Cells[0][j].Best; w == AlwaysRecompute {
			t.Errorf("P=%.2f f=%.5f: Always Recompute should not win at low P", g.Ps[0], g.Fs[j])
		}
	}
	// High-P row: Always Recompute or C&I (its plateau tracks recompute).
	for j := range g.Fs {
		if w := g.Cells[len(g.Ps)-1][j].Best; w == UpdateCacheAVM || w == UpdateCacheRVM {
			t.Errorf("P=%.2f f=%.5f: Update Cache should not win at high P", g.Ps[len(g.Ps)-1], g.Fs[j])
		}
	}

	// Update Cache winning range in P narrows as f grows.
	ucRange := func(col int) int {
		count := 0
		for i := range g.Ps {
			if b := g.Cells[i][col].Best; b == UpdateCacheAVM || b == UpdateCacheRVM {
				count++
			}
		}
		return count
	}
	small, large := ucRange(0), ucRange(len(g.Fs)-1)
	if large >= small {
		t.Errorf("Update Cache winning P-range should shrink with f: small-f %d rows vs large-f %d rows", small, large)
	}
}

// TestWinnerGridModel2PrefersRVM asserts the Figure 19 observation: in
// model 2 (with the default SF=0.5, just above the crossover) the winning
// Update Cache variant is RVM, not AVM.
func TestWinnerGridModel2PrefersRVM(t *testing.T) {
	base := Default()
	base.SF = 0.6
	g := winnerGridDefaults(Model2, base)
	var avmWins, rvmWins int
	for i := range g.Ps {
		for j := range g.Fs {
			switch g.Cells[i][j].Best {
			case UpdateCacheAVM:
				avmWins++
			case UpdateCacheRVM:
				rvmWins++
			}
		}
	}
	if rvmWins == 0 {
		t.Fatal("RVM should win somewhere in model 2 at SF=0.6")
	}
	if avmWins > 0 {
		t.Errorf("AVM wins %d cells in model 2 at SF=0.6; RVM should dominate (RVM wins %d)", avmWins, rvmWins)
	}
}

// TestClosenessGrid asserts Figure 14/15 behaviour: with f2 = 1 (no false
// invalidations) Cache and Invalidate is within 2x of Update Cache on at
// least as many cells as with the default f2 = 0.1.
func TestClosenessGrid(t *testing.T) {
	count := func(base Params) int {
		g := winnerGridDefaults(Model1, base)
		n := 0
		for i := range g.Ps {
			for j := range g.Fs {
				if g.Cells[i][j].CacheInvalWithinFactor(2) {
					n++
				}
			}
		}
		return n
	}
	def := count(Default())
	noFalse := Default()
	noFalse.F2 = 1
	nf := count(noFalse)
	if def == 0 {
		t.Fatal("C&I should be within 2x of Update Cache somewhere")
	}
	if nf < def {
		t.Errorf("removing false invalidations should not shrink the closeness region: f2=1 %d vs default %d", nf, def)
	}
}

// TestHighLocalityExpandsCacheInvalRegion asserts the Figure 13 claim that
// Cache and Invalidate benefits from locality: at Z = 0.05 it wins at least
// as many cells as at Z = 0.2.
func TestHighLocalityExpandsCacheInvalRegion(t *testing.T) {
	wins := func(z float64) int {
		base := Default()
		base.Z = z
		g := winnerGridDefaults(Model1, base)
		n := 0
		for i := range g.Ps {
			for j := range g.Fs {
				if g.Cells[i][j].Best == CacheInvalidate {
					n++
				}
			}
		}
		return n
	}
	if hi, def := wins(0.05), wins(0.2); hi < def {
		t.Errorf("Z=0.05 C&I wins %d cells < Z=0.2 wins %d", hi, def)
	}
}

func TestWinnerHelpers(t *testing.T) {
	w := Winner{Costs: [NumStrategies]float64{100, 50, 40, 60}}
	if got := w.UpdateCacheBest(); got != 40 {
		t.Errorf("UpdateCacheBest = %v, want 40", got)
	}
	if !w.CacheInvalWithinFactor(2) {
		t.Error("50 <= 2*40 should be within factor")
	}
	if w.CacheInvalWithinFactor(1.2) {
		t.Error("50 > 1.2*40 should not be within factor")
	}
	w2 := Winner{Costs: [NumStrategies]float64{10, 50, 40, 5}}
	if got := w2.UpdateCacheBest(); got != 5 {
		t.Errorf("UpdateCacheBest = %v, want 5", got)
	}
}

func TestBestStrategyTieBreaksTowardSimplicity(t *testing.T) {
	// At P=0 C&I, AVM and RVM all cost exactly the cached read; the tie
	// must break toward the earlier (simpler) strategy, C&I.
	w := BestStrategy(Model1, Default().WithUpdateProbability(0))
	if w.Best != CacheInvalidate {
		t.Errorf("tie at P=0 should pick Cache and Invalidate, got %v", w.Best)
	}
}
