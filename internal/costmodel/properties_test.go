package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// randomParams derives a valid parameter point from fuzz inputs, spanning
// the ranges the paper's figures sweep.
func randomParams(fSeed, upSeed, sfSeed, zSeed uint16) Params {
	p := Default()
	p.F = 1e-5 * math.Pow(5000, float64(fSeed)/65535) // 1e-5 .. 5e-2
	p = p.WithUpdateProbability(0.98 * float64(upSeed) / 65535)
	p.SF = float64(sfSeed) / 65535
	p.Z = 0.02 + 0.96*float64(zSeed)/65535
	return p
}

// Property: every strategy's cost is finite and positive for any valid
// parameter point, in both models.
func TestCostsAlwaysFiniteAndPositive(t *testing.T) {
	f := func(fSeed, upSeed, sfSeed, zSeed uint16) bool {
		p := randomParams(fSeed, upSeed, sfSeed, zSeed)
		for _, m := range []Model{Model1, Model2} {
			for _, s := range Strategies {
				c := Cost(m, s, p)
				if math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Update Cache and Cache and Invalidate costs are monotonically
// non-decreasing in the update probability; Always Recompute is constant.
func TestCostsMonotoneInP(t *testing.T) {
	f := func(fSeed, sfSeed, zSeed uint16) bool {
		p := randomParams(fSeed, 0, sfSeed, zSeed)
		prev := [NumStrategies]float64{}
		for i, up := range LinSpace(0, 0.95, 12) {
			q := p.WithUpdateProbability(up)
			for _, s := range Strategies {
				c := Cost(Model1, s, q)
				if i > 0 {
					if s == AlwaysRecompute {
						if c != prev[s] {
							return false
						}
					} else if c < prev[s]-1e-9 {
						return false
					}
				}
				prev[s] = c
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: costs never decrease when objects grow (f increases), for the
// recompute and update-cache strategies. (C&I is not monotone in f: larger
// objects can shift work between the T1/T2/T3 terms.)
func TestCostsMonotoneInF(t *testing.T) {
	f := func(upSeed, sfSeed uint16) bool {
		p := randomParams(0, upSeed, sfSeed, 20000)
		prev := map[Strategy]float64{}
		for i, fv := range LogSpace(1e-5, 0.05, 10) {
			p.F = fv
			for _, s := range []Strategy{AlwaysRecompute, UpdateCacheAVM, UpdateCacheRVM} {
				c := Cost(Model1, s, p)
				if i > 0 && c < prev[s]-1e-9 {
					return false
				}
				prev[s] = c
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: model 2 never costs less than model 1 for the same parameters
// (three-way joins strictly add work) for recompute, C&I and AVM, and RVM
// differs only through the right-memory geometry.
func TestModel2AtLeastModel1(t *testing.T) {
	f := func(fSeed, upSeed, sfSeed, zSeed uint16) bool {
		p := randomParams(fSeed, upSeed, sfSeed, zSeed)
		for _, s := range []Strategy{AlwaysRecompute, CacheInvalidate, UpdateCacheAVM} {
			if Cost(Model2, s, p) < Cost(Model1, s, p)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the T3 invalidation term is linear in C_inval.
func TestCacheInvalLinearInCinval(t *testing.T) {
	f := func(fSeed, upSeed uint16) bool {
		p := randomParams(fSeed, upSeed, 0, 20000)
		base := CacheInvalidateCost(Model1, p)
		p.CInval = 30
		mid := CacheInvalidateCost(Model1, p)
		p.CInval = 60
		high := CacheInvalidateCost(Model1, p)
		// Equal spacing: high - mid == mid - base.
		return math.Abs((high-mid)-(mid-base)) < 1e-6*math.Max(1, high)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: at P = 0 all caching strategies cost exactly the cached read,
// for any object size and sharing factor.
func TestZeroPReadOnlyEverywhere(t *testing.T) {
	f := func(fSeed, sfSeed, zSeed uint16) bool {
		p := randomParams(fSeed, 0, sfSeed, zSeed).WithUpdateProbability(0)
		read := p.C2 * p.ProcSize()
		for _, m := range []Model{Model1, Model2} {
			for _, s := range []Strategy{CacheInvalidate, UpdateCacheAVM, UpdateCacheRVM} {
				if math.Abs(Cost(m, s, p)-read) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
