// Package parallel runs embarrassingly parallel sweep cells — one
// (figure point × seed × strategy) simulation per cell — across a
// bounded worker pool with a deterministic reduction: results are
// delivered in input-index order, never completion order, so every
// consumer produces byte-identical output whether the pool has one
// worker or many.
//
// The determinism contract has two halves. This package guarantees the
// ordering half: Map's result slice is indexed by input position, and
// any error reported is the one from the lowest-indexed failing cell.
// The caller guarantees the independence half: each cell must own its
// world — its RNG, pager, meter, and tracer — and share nothing mutable
// with other cells. Package sim's Build/Run satisfies this (each World
// is self-contained), which is what makes the sweep engines in package
// experiments safe to fan out.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count flag: n >= 1 is used as given; zero or
// negative means one worker per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n) across at most workers
// goroutines. Cells are claimed in index order from a shared counter; a
// failed or cancelled cell stops new cells from starting (in-flight
// cells finish). ForEach returns the error of the lowest-indexed cell
// that failed, or ctx's error if the context was cancelled first — the
// same error regardless of worker count or scheduling.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// The sequential path is the reference the pool must match.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		errAt = -1
		first error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if errAt < 0 || i < errAt {
			errAt, first = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// Map runs fn for every index across the pool and returns the results in
// input order. On error the returned slice still holds every cell that
// completed (incomplete cells keep T's zero value), so callers can
// render partial sweeps after cancellation.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
