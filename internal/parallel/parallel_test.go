package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
}

// TestMapOrderIsDeterministic is the reduction contract: whatever the
// worker count, results land at their input index, so downstream
// rendering is byte-identical to the sequential run.
func TestMapOrderIsDeterministic(t *testing.T) {
	const n = 100
	want := make([]string, n)
	for i := range want {
		want[i] = fmt.Sprintf("cell-%03d", i)
	}
	for _, workers := range []int{1, 2, 4, 16, 200} {
		got, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (string, error) {
			// Perturb completion order: early cells finish last.
			if i < 10 {
				time.Sleep(time.Duration(10-i) * time.Millisecond)
			}
			return fmt.Sprintf("cell-%03d", i), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachRunsEveryCellOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	err := ForEach(context.Background(), 8, n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// TestErrorIsLowestIndexed: the reported error must not depend on
// scheduling, so the lowest-indexed failure wins.
func TestErrorIsLowestIndexed(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4, 32} {
		err := ForEach(context.Background(), workers, 64, func(_ context.Context, i int) error {
			switch i {
			case 3:
				time.Sleep(5 * time.Millisecond) // let higher cells fail first
				return errLow
			case 40, 50, 60:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

func TestErrorStopsNewCells(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	err := ForEach(context.Background(), 2, 10_000, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if s := started.Load(); s > 100 {
		t.Fatalf("%d cells started after failure; pool did not stop", s)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := false
		err := ForEach(ctx, workers, 10, func(context.Context, int) error {
			ran = true
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if workers == 1 && ran {
			t.Fatal("sequential path ran a cell under a cancelled context")
		}
	}
}

func TestMapPartialResultsSurviveError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 1, 5, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i * 10, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if out[0] != 0 || out[1] != 10 || out[2] != 20 {
		t.Fatalf("completed cells lost: %v", out)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	out, err := Map(context.Background(), 8, 1, func(_ context.Context, i int) (int, error) { return 7, nil })
	if err != nil || len(out) != 1 || out[0] != 7 {
		t.Fatalf("n=1: %v %v", out, err)
	}
}

func TestTimingsMakespan(t *testing.T) {
	tm := &Timings{}
	for _, d := range []time.Duration{4, 3, 2, 1, 4, 3, 2, 1} {
		tm.Observe(d * time.Second)
	}
	if got := tm.Total(); got != 20*time.Second {
		t.Fatalf("total = %v", got)
	}
	// One worker: makespan == total.
	if got := tm.Makespan(1); got != 20*time.Second {
		t.Fatalf("makespan(1) = %v", got)
	}
	// Greedy order 4,3,2,1,4,3,2,1 on 4 workers balances perfectly:
	// first wave fills workers to 4,3,2,1; the mirrored second wave tops
	// each up to 5.
	if got := tm.Makespan(4); got != 5*time.Second {
		t.Fatalf("makespan(4) = %v", got)
	}
	if s := tm.ProjectedSpeedup(4); s < 3.9 || s > 4.1 {
		t.Fatalf("projected speedup = %v, want 4", s)
	}
	// More workers than cells clamps.
	if got := tm.Makespan(100); got != 4*time.Second {
		t.Fatalf("makespan(100) = %v", got)
	}
	var nilT *Timings
	nilT.Observe(time.Second) // must not panic
	if nilT.Total() != 0 || nilT.Makespan(4) != 0 {
		t.Fatal("nil Timings should be inert")
	}
}

func TestTimingsContext(t *testing.T) {
	if TimingsFrom(context.Background()) != nil {
		t.Fatal("empty context carried timings")
	}
	tm := &Timings{}
	ctx := WithTimings(context.Background(), tm)
	if TimingsFrom(ctx) != tm {
		t.Fatal("timings not recovered from context")
	}
}
