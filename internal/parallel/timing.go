package parallel

import (
	"context"
	"sync"
	"time"
)

// Timings collects per-cell wall-clock durations so a sweep run on one
// box can project its speedup on another worker count: the projection
// replays the recorded cells through a simulated pool (greedy list
// scheduling, the same discipline ForEach uses) and compares total work
// to the resulting makespan. This keeps BENCH_parallel.json honest on
// core-starved machines — the measured wall-clock columns show what this
// box did, the projected columns show what the recorded cells imply for
// a wider pool.
type Timings struct {
	mu    sync.Mutex
	cells []time.Duration
}

// Observe records one cell's wall-clock duration. Safe for concurrent
// use by pool workers.
func (t *Timings) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cells = append(t.cells, d)
	t.mu.Unlock()
}

// Cells returns a copy of the recorded durations.
func (t *Timings) Cells() []time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]time.Duration(nil), t.cells...)
}

// Total returns the summed duration of every recorded cell — the serial
// wall-clock floor of the sweep.
func (t *Timings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.Cells() {
		sum += d
	}
	return sum
}

// Makespan replays the recorded cells through a simulated pool of the
// given width using greedy list scheduling in recorded order (each cell
// goes to the earliest-free worker) and returns the finish time of the
// last worker.
func (t *Timings) Makespan(workers int) time.Duration {
	cells := t.Cells()
	if len(cells) == 0 || workers < 1 {
		return 0
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	busy := make([]time.Duration, workers)
	for _, d := range cells {
		min := 0
		for w := 1; w < workers; w++ {
			if busy[w] < busy[min] {
				min = w
			}
		}
		busy[min] += d
	}
	var end time.Duration
	for _, b := range busy {
		if b > end {
			end = b
		}
	}
	return end
}

// ProjectedSpeedup returns Total/Makespan for the given pool width — the
// wall-clock factor a pool of that many truly concurrent workers would
// gain over the serial run of the same cells.
func (t *Timings) ProjectedSpeedup(workers int) float64 {
	ms := t.Makespan(workers)
	if ms == 0 {
		return 0
	}
	return float64(t.Total()) / float64(ms)
}

// timingsKey carries a *Timings through a context without widening any
// sweep-engine signatures; only benchmark harnesses attach one.
type timingsKey struct{}

// WithTimings returns a context that instructs instrumented sweeps
// (experiments.simCells) to record per-cell durations into t.
func WithTimings(ctx context.Context, t *Timings) context.Context {
	return context.WithValue(ctx, timingsKey{}, t)
}

// TimingsFrom extracts the collector attached by WithTimings, or nil.
func TimingsFrom(ctx context.Context) *Timings {
	t, _ := ctx.Value(timingsKey{}).(*Timings)
	return t
}
