package avm

import (
	"testing"

	"dbproc/internal/cache"
	"dbproc/internal/dbtest"
	"dbproc/internal/ilock"
	"dbproc/internal/query"
	"dbproc/internal/tuple"
)

// fixture wires an engine over the dbtest world with one P1-style view
// (skey band [20, 39]) and one P2-style view (skey band [50, 69] joined to
// R2 with p2 < 5).
type fixture struct {
	w      *dbtest.World
	eng    *Engine
	store  *cache.Store
	p1, p2 *View
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := dbtest.NewWorld(dbtest.Config{})
	store := cache.NewStore(w.Pager.Disk())
	router := ilock.NewManager()
	eng := NewEngine(store, router)

	s1 := w.R1.Schema()
	key1 := func(tup []byte) uint64 {
		return tuple.ClusterKey(s1.GetByName(tup, "skey"), s1.GetByName(tup, "tid"))
	}
	p1 := &View{
		ID:       1,
		FullPlan: query.NewBTreeRangeScan(w.R1, 20, 39),
		Key:      key1,
		Sources: []Source{{
			Rel:  w.R1,
			Attr: "skey",
			Band: [2]int64{20, 39},
			// Rule indexing already restricted the deltas to the band,
			// which is the whole P1 predicate: no further work (the
			// paper's "no extra cost" for P1 changes).
			DeltaPlan: func(vs *query.ValuesScan) query.Plan { return vs },
		}},
	}
	store.Define(1, s1.Width())
	eng.Register(p1)

	// The maintenance join re-applies C_f2 with an uncharged Refine; the
	// full plan uses a charged Filter as in user query processing.
	mkJoin := func(child query.Plan, charged bool) query.Plan {
		j := query.NewHashJoinProbe(child, w.R2, "a", 80)
		pred := query.Compare{Field: "r2_p2", Op: query.Lt, Value: 5}
		if charged {
			return &query.Filter{Child: j, Pred: pred}
		}
		return &query.Refine{Child: j, Pred: pred}
	}
	joinSchema := mkJoin(query.NewBTreeRangeScan(w.R1, 50, 69), true).Schema()
	key2 := func(tup []byte) uint64 {
		return tuple.ClusterKey(joinSchema.GetByName(tup, "skey"), joinSchema.GetByName(tup, "tid"))
	}
	p2 := &View{
		ID:       2,
		FullPlan: mkJoin(query.NewBTreeRangeScan(w.R1, 50, 69), true),
		Key:      key2,
		Sources: []Source{
			{
				Rel:  w.R1,
				Attr: "skey",
				Band: [2]int64{50, 69},
				DeltaPlan: func(vs *query.ValuesScan) query.Plan {
					return mkJoin(vs, false)
				},
			},
			{
				Rel:  w.R2,
				Attr: "p2",
				Band: [2]int64{0, 4},
				// An R2 delta joins back to the band's R1 tuples via a
				// nested-loop over the band scan (R1 has no index on a).
				DeltaPlan: func(vs *query.ValuesScan) query.Plan {
					refined := &query.Refine{Child: vs, Pred: query.Range{Field: "p2", Lo: 0, Hi: 4}}
					return query.NewNestedLoopJoin(
						query.NewBTreeRangeScan(w.R1, 50, 69), refined, "a", "b", "r2_", 80)
				},
			},
		},
	}
	store.Define(2, joinSchema.Width())
	eng.Register(p2)

	w.Pager.SetCharging(false)
	eng.Prepare(w.Pager)
	w.Pager.BeginOp()
	w.Pager.SetCharging(true)
	w.Meter.Reset()
	return &fixture{w: w, eng: eng, store: store, p1: p1, p2: p2}
}

// recompute returns the view's from-scratch value as a key->tuple map.
func (f *fixture) recompute(v *View) map[uint64][]byte {
	prev := f.w.Pager.SetCharging(false)
	defer f.w.Pager.SetCharging(prev)
	out := map[uint64][]byte{}
	v.FullPlan.Execute(&query.Ctx{Meter: f.w.Meter, Pager: f.w.Pager}, func(tup []byte) bool {
		out[v.Key(tup)] = tup
		return true
	})
	return out
}

// assertConsistent checks a view's stored contents equal a recompute.
func (f *fixture) assertConsistent(t *testing.T, v *View) {
	t.Helper()
	want := f.recompute(v)
	prev := f.w.Pager.SetCharging(false)
	defer f.w.Pager.SetCharging(prev)
	got := 0
	f.store.MustEntry(cache.ID(v.ID)).ReadAll(f.w.Pager, func(k uint64, rec []byte) bool {
		wantRec, ok := want[k]
		if !ok {
			t.Errorf("view %d holds unexpected key %d", v.ID, k)
			return true
		}
		for i := range rec {
			if rec[i] != wantRec[i] {
				t.Errorf("view %d key %d contents differ", v.ID, k)
				break
			}
		}
		got++
		return true
	})
	if got != len(want) {
		t.Errorf("view %d holds %d tuples, recompute has %d", v.ID, got, len(want))
	}
}

// applyUpdate moves R1 tuple tid to a new skey (delete + reinsert in the
// base relation) and feeds the delta to the engine.
func (f *fixture) applyUpdate(t *testing.T, moves [][3]int64) {
	t.Helper()
	w := f.w
	s1 := w.R1.Schema()
	var del, ins [][]byte
	prev := w.Pager.SetCharging(false)
	for _, mv := range moves {
		tid, oldSkey, newSkey := mv[0], mv[1], mv[2]
		old, ok := w.R1.Tree().Get(w.Pager, tuple.ClusterKey(oldSkey, tid))
		if !ok {
			t.Fatalf("tuple %d at skey %d missing", tid, oldSkey)
		}
		newTup := append([]byte(nil), old...)
		s1.SetByName(newTup, "skey", newSkey)
		w.R1.DeleteKeyed(w.Pager, tuple.ClusterKey(oldSkey, tid))
		w.R1.Insert(w.Pager, newTup)
		del = append(del, old)
		ins = append(ins, newTup)
	}
	w.Pager.BeginOp()
	w.Pager.SetCharging(prev)
	f.eng.Apply(w.Pager, w.R1, ins, del)
	w.Pager.BeginOp()
}

func TestPrepareFillsViews(t *testing.T) {
	f := newFixture(t)
	e1 := f.store.MustEntry(1)
	if !e1.Valid() || e1.Len() != 20 {
		t.Fatalf("P1 view: valid=%v len=%d, want 20 tuples", e1.Valid(), e1.Len())
	}
	// skey 50..69 join p2<5: a=tid%40 in 50..69 -> a in 10..29; p2 = a%10
	// < 5 keeps a%10 in 0..4: half of them = 10 tuples.
	e2 := f.store.MustEntry(2)
	if !e2.Valid() || e2.Len() != 10 {
		t.Fatalf("P2 view: valid=%v len=%d, want 10 tuples", e2.Valid(), e2.Len())
	}
	if f.eng.NumViews() != 2 || f.eng.Lookup(1) != f.p1 || f.eng.Lookup(3) != nil {
		t.Fatal("registry wrong")
	}
}

func TestMoveIntoAndOutOfP1Band(t *testing.T) {
	f := newFixture(t)
	// Move tid 5 (skey 5, outside) into the band, and tid 25 out of it.
	f.applyUpdate(t, [][3]int64{{5, 5, 30}, {25, 25, 99}})
	f.assertConsistent(t, f.p1)
	f.assertConsistent(t, f.p2)
	e1 := f.store.MustEntry(1)
	if e1.Len() != 20 { // one in, one out
		t.Fatalf("P1 view len = %d, want 20", e1.Len())
	}
	if !e1.File().Contains(tuple.ClusterKey(30, 5)) {
		t.Fatal("moved-in tuple missing")
	}
	if e1.File().Contains(tuple.ClusterKey(25, 25)) {
		t.Fatal("moved-out tuple still present")
	}
}

func TestMoveWithinBandUpdatesKey(t *testing.T) {
	f := newFixture(t)
	f.applyUpdate(t, [][3]int64{{22, 22, 35}})
	f.assertConsistent(t, f.p1)
	e1 := f.store.MustEntry(1)
	if e1.File().Contains(tuple.ClusterKey(22, 22)) || !e1.File().Contains(tuple.ClusterKey(35, 22)) {
		t.Fatal("within-band move mishandled")
	}
}

func TestP2JoinFilterRespected(t *testing.T) {
	f := newFixture(t)
	// tid 110: a = 110%40 = 30, p2 = 30%10 = 0 < 5 -> joins and passes.
	f.applyUpdate(t, [][3]int64{{110, 110, 55}})
	f.assertConsistent(t, f.p2)
	if !f.store.MustEntry(2).File().Contains(tuple.ClusterKey(55, 110)) {
		t.Fatal("qualifying join tuple missing from P2 view")
	}
	// tid 115: a = 35, p2 = 5, fails C_f2 -> enters band but not the view.
	f.applyUpdate(t, [][3]int64{{115, 115, 56}})
	f.assertConsistent(t, f.p2)
	if f.store.MustEntry(2).File().Contains(tuple.ClusterKey(56, 115)) {
		t.Fatal("non-qualifying tuple leaked into P2 view")
	}
}

func TestIrrelevantUpdateIsFree(t *testing.T) {
	f := newFixture(t)
	f.w.Meter.Reset()
	// Move far outside both bands: no screening, no I/O, no delta ops.
	f.applyUpdate(t, [][3]int64{{150, 150, 160}})
	if ms := f.w.Meter.Milliseconds(); ms != 0 {
		t.Fatalf("irrelevant update cost %v ms (%v)", ms, f.w.Meter.Snapshot())
	}
	f.assertConsistent(t, f.p1)
	f.assertConsistent(t, f.p2)
}

func TestScreeningAndDeltaCharges(t *testing.T) {
	f := newFixture(t)
	f.w.Meter.Reset()
	// One move fully inside the P1 band: old and new values both conflict
	// with view 1 only -> 2 screens, 2 delta ops.
	f.applyUpdate(t, [][3]int64{{21, 21, 38}})
	c := f.w.Meter.Snapshot()
	if c.Screens != 2 || c.DeltaOps != 2 {
		t.Fatalf("screens=%d deltaOps=%d, want 2 and 2", c.Screens, c.DeltaOps)
	}
	// Refresh touched the view file: at least one read and one write.
	if c.PageReads < 1 || c.PageWrites < 1 {
		t.Fatalf("refresh I/O missing: %v", c)
	}
}

func TestP2UpdateChargesJoinReads(t *testing.T) {
	f := newFixture(t)
	f.w.Meter.Reset()
	f.applyUpdate(t, [][3]int64{{110, 110, 55}})
	c := f.w.Meter.Snapshot()
	// The delta plan probes R2 for the inserted (and band-matching deleted)
	// values: at least one page read beyond the view refresh.
	if c.PageReads < 2 {
		t.Fatalf("expected join probe reads, got %v", c)
	}
}

func TestRegisterValidation(t *testing.T) {
	f := newFixture(t)
	identity := func(vs *query.ValuesScan) query.Plan { return vs }
	src := func(mutate func(*Source)) []Source {
		s := Source{Rel: f.w.R1, Attr: "skey", Band: [2]int64{0, 9}, DeltaPlan: identity}
		if mutate != nil {
			mutate(&s)
		}
		return []Source{s}
	}
	for name, v := range map[string]*View{
		"duplicate id": {ID: 1, FullPlan: f.p1.FullPlan, Key: f.p1.Key, Sources: src(nil)},
		"nil plan":     {ID: 9, Key: f.p1.Key, Sources: src(nil)},
		"nil key":      {ID: 9, FullPlan: f.p1.FullPlan, Sources: src(nil)},
		"no sources":   {ID: 9, FullPlan: f.p1.FullPlan, Key: f.p1.Key},
		"nil rel":      {ID: 9, FullPlan: f.p1.FullPlan, Key: f.p1.Key, Sources: src(func(s *Source) { s.Rel = nil })},
		"nil delta":    {ID: 9, FullPlan: f.p1.FullPlan, Key: f.p1.Key, Sources: src(func(s *Source) { s.DeltaPlan = nil })},
		"bad attr":     {ID: 9, FullPlan: f.p1.FullPlan, Key: f.p1.Key, Sources: src(func(s *Source) { s.Attr = "zzz" })},
		"dup rel": {ID: 9, FullPlan: f.p1.FullPlan, Key: f.p1.Key,
			Sources: append(src(nil), src(nil)...)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f.eng.Register(v)
		}()
	}
}

// applyR2Update changes the p2 attribute of the R2 tuple with key b and
// feeds the delta to the engine.
func (f *fixture) applyR2Update(t *testing.T, b, newP2 int64) {
	t.Helper()
	w := f.w
	s2 := w.R2.Schema()
	prev := w.Pager.SetCharging(false)
	old, ok := w.R2.Hash().Lookup(w.Pager, uint64(b))
	if !ok {
		t.Fatalf("R2 tuple b=%d missing", b)
	}
	newTup := append([]byte(nil), old...)
	s2.SetByName(newTup, "p2", newP2)
	w.R2.Hash().Delete(w.Pager, uint64(b))
	w.R2.Insert(w.Pager, newTup)
	w.Pager.BeginOp()
	w.Pager.SetCharging(prev)
	f.eng.Apply(w.Pager, w.R2, [][]byte{newTup}, [][]byte{old})
	w.Pager.BeginOp()
}

// TestR2UpdatesMaintainJoinView exercises the second source: restyling R2
// tuples into and out of the C_f2 band must add and remove the joined
// result tuples.
func TestR2UpdatesMaintainJoinView(t *testing.T) {
	f := newFixture(t)
	// b=15 has p2 = 15%10 = 5 (outside the band [0,4]); R1 band [50,69]
	// holds tuples with a in 10..29, so a=15 matches tids 55 and 175...
	// only tid 55 has skey in [50,69].
	before := f.store.MustEntry(2).Len()
	f.applyR2Update(t, 15, 2) // now passes C_f2
	f.assertConsistent(t, f.p2)
	if got := f.store.MustEntry(2).Len(); got != before+1 {
		t.Fatalf("view grew by %d, want 1", got-before)
	}
	// And back out of the band.
	f.applyR2Update(t, 15, 9)
	f.assertConsistent(t, f.p2)
	if got := f.store.MustEntry(2).Len(); got != before {
		t.Fatalf("view has %d tuples, want %d", got, before)
	}
	// An R2 change outside any band is free and irrelevant.
	f.w.Meter.Reset()
	f.applyR2Update(t, 16, 7) // 6 -> 7, both outside [0,4]
	if ms := f.w.Meter.Milliseconds(); ms != 0 {
		t.Fatalf("irrelevant R2 update cost %v ms", ms)
	}
	f.assertConsistent(t, f.p2)
}

// TestR2UpdateChargesBandScan: the R2-side delta plan must pay for the R1
// band scan (NestedLoopJoin outer), since R1 has no index on the join
// attribute.
func TestR2UpdateChargesBandScan(t *testing.T) {
	f := newFixture(t)
	f.w.Meter.Reset()
	f.applyR2Update(t, 15, 2)
	c := f.w.Meter.Snapshot()
	if c.PageReads < 2 {
		t.Fatalf("R2-delta maintenance should scan the R1 band: %v", c)
	}
	// 1 routing screen + 20 band-scan screens (the nested-loop outer tests
	// each band tuple), 1 delta-set entry.
	if c.Screens != 21 || c.DeltaOps != 1 {
		t.Fatalf("R2 routing charged screens=%d deltaOps=%d, want 21 and 1", c.Screens, c.DeltaOps)
	}
}

// TestManyRandomUpdatesStayConsistent drives a long random churn and
// checks the views never drift from recomputation.
func TestManyRandomUpdatesStayConsistent(t *testing.T) {
	f := newFixture(t)
	// Track current skey per tid (all start at skey = tid).
	cur := map[int64]int64{}
	for tid := int64(0); tid < 200; tid++ {
		cur[tid] = tid
	}
	seq := []int64{3, 27, 55, 110, 199, 42, 21, 68, 150, 5, 30, 61, 25, 99, 140}
	newSkeys := []int64{25, 60, 10, 52, 33, 66, 21, 90, 55, 38, 71, 20, 59, 24, 65}
	for i, tid := range seq {
		f.applyUpdate(t, [][3]int64{{tid, cur[tid], newSkeys[i]}})
		cur[tid] = newSkeys[i]
		f.assertConsistent(t, f.p1)
		f.assertConsistent(t, f.p2)
	}
}
