// Package avm implements statically-optimized algebraic view maintenance
// (the paper's non-shared Update Cache variant, after Blakeley, Larson and
// Tompa 1986). For a view V over relations A and B, a transaction that
// inserts the tuple set a into A and deletes d yields
//
//	V(A ∪ a − d, B) = V(A, B) ∪ V(a, B) − V(d, B)
//
// so only the small delta expressions V(a, B) and V(d, B) are evaluated,
// against pre-compiled delta plans; the stored copy of V is patched in
// place. A view registers one Source per updatable base relation; the
// symmetric identity handles updates to B with a B-side delta plan.
//
// Cost events, matching the model's section 4.3 terms:
//
//   - one C1 screen per (changed tuple value, view) pair identified by rule
//     indexing (C_screenP1 / C_screenP2);
//   - one C3 delta op per tuple entered into a view's A_net or D_net set
//     (C_overhead);
//   - page reads from evaluating the delta plans' joins (C_join);
//   - page reads+writes on the stored view's pages from applying the
//     deltas (C_refreshP1 / C_refreshP2).
package avm

import (
	"fmt"
	"sync"

	"dbproc/internal/cache"
	"dbproc/internal/ilock"
	"dbproc/internal/metric"
	"dbproc/internal/obs"
	"dbproc/internal/query"
	"dbproc/internal/relation"
	"dbproc/internal/storage"
)

// Source describes how updates to one base relation reach a view.
type Source struct {
	// Rel is the updatable base relation.
	Rel *relation.Relation
	// Attr names the attribute rule indexing routes on; Band is the
	// restriction band on it (the view's selection predicate over Rel, or
	// the full value range if the view does not restrict Rel).
	Attr string
	Band [2]int64
	// DeltaPlan compiles the V(delta, ...) evaluation: it receives the
	// delta tuples of Rel and returns the view tuples they produce,
	// emitting tuples of the view's FullPlan schema. For a plain selection
	// whose predicate equals the band this is the values themselves.
	DeltaPlan func(deltas *query.ValuesScan) query.Plan
}

// View describes one materialized result maintained by the engine.
type View struct {
	// ID names the view; it is also its cache entry id and i-lock owner.
	ID int
	// FullPlan computes the view from scratch (used for the initial fill).
	FullPlan query.Plan
	// Key returns the clustering key of a result tuple.
	Key func(tup []byte) uint64
	// Sources lists the base relations whose updates the view tracks, at
	// most one per relation.
	Sources []Source
}

// sourceFor returns the view's source for the named relation, or nil.
func (v *View) sourceFor(rel string) *Source {
	for i := range v.Sources {
		if v.Sources[i].Rel.Schema().Name() == rel {
			return &v.Sources[i]
		}
	}
	return nil
}

// Engine maintains a set of views differentially. Apply serializes
// itself: the scratch delta sets and the stored view files admit one
// transaction's maintenance at a time, so concurrent sessions' delta-set
// applications execute in some serial order. All metered work is charged
// to the applying session's pager and meter, passed per call.
type Engine struct {
	mu     sync.Mutex
	store  *cache.Store
	router *ilock.Manager
	views  map[int]*View
	order  []int
	// attrsByRel lists the distinct routing attributes registered per
	// relation, so Apply extracts each changed tuple's routing values
	// once.
	attrsByRel map[string][]string

	// Scratch delta sets, reused across transactions: view id -> A_net and
	// D_net tuple sets for the current transaction.
	anet map[int][][]byte
	dnet map[int][][]byte

	tracer *obs.Tracer
	ledger *cache.Ledger
}

// SetTracer attaches a tracer; each Apply then records avm.route and
// avm.merge child spans covering the two maintenance phases.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// SetLedger attaches a cache-efficacy ledger; each Apply then records one
// KindMaintained event per patched view, carrying the view's routing
// share (screens and delta ops are charged per routed pair, so the share
// is exact) plus its measured delta-plan and patch cost.
func (e *Engine) SetLedger(l *cache.Ledger) { e.ledger = l }

// NewEngine creates an empty engine storing view contents in store and
// using router for rule-indexed change screening.
func NewEngine(store *cache.Store, router *ilock.Manager) *Engine {
	return &Engine{
		store:      store,
		router:     router,
		views:      make(map[int]*View),
		attrsByRel: make(map[string][]string),
		anet:       make(map[int][][]byte),
		dnet:       make(map[int][][]byte),
	}
}

// Name identifies the maintenance algorithm.
func (e *Engine) Name() string { return "AVM" }

// routeKey qualifies a relation's lock namespace with the routed
// attribute, so bands on different attributes of one relation do not mix.
func routeKey(rel, attr string) string { return rel + "\x00" + attr }

// Register adds a view. Its cache entry must already be defined.
func (e *Engine) Register(v *View) {
	if _, dup := e.views[v.ID]; dup {
		panic(fmt.Sprintf("avm: view %d already registered", v.ID))
	}
	if v.FullPlan == nil || v.Key == nil || len(v.Sources) == 0 {
		panic("avm: incomplete view definition")
	}
	seen := map[string]bool{}
	for _, src := range v.Sources {
		if src.Rel == nil || src.DeltaPlan == nil {
			panic("avm: incomplete view source")
		}
		rel := src.Rel.Schema().Name()
		if seen[rel] {
			panic(fmt.Sprintf("avm: view %d has two sources on %s", v.ID, rel))
		}
		seen[rel] = true
		if src.Rel.Schema().FieldIndex(src.Attr) < 0 {
			panic(fmt.Sprintf("avm: view %d routes %s on unknown attribute %q", v.ID, rel, src.Attr))
		}
		e.router.LockRange(routeKey(rel, src.Attr), src.Band[0], src.Band[1], ilock.Owner(v.ID))
		attrs := e.attrsByRel[rel]
		found := false
		for _, a := range attrs {
			if a == src.Attr {
				found = true
				break
			}
		}
		if !found {
			e.attrsByRel[rel] = append(attrs, src.Attr)
		}
	}
	e.views[v.ID] = v
	e.order = append(e.order, v.ID)
}

// NumViews returns the number of registered views.
func (e *Engine) NumViews() int { return len(e.views) }

// Prepare computes every view from scratch and marks its cache entry
// valid. Run it with charging disabled: it is setup, not workload.
func (e *Engine) Prepare(pg *storage.Pager) {
	ctx := &query.Ctx{Meter: pg.Meter(), Pager: pg}
	for _, id := range e.order {
		v := e.views[id]
		entry := e.store.MustEntry(cache.ID(id))
		keys, recs := query.Materialize(v.FullPlan, v.Key, ctx)
		entry.Replace(pg, keys, recs)
		entry.MarkValid(pg)
	}
}

// Apply maintains every registered view after an update transaction that
// deleted the old tuple values in deleted and inserted the new values in
// inserted on rel (an in-place modification contributes to both).
func (e *Engine) Apply(pg *storage.Pager, rel *relation.Relation, inserted, deleted [][]byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Maintenance work runs attributed to the avm component; the delta
	// plans' scan and probe nodes re-scope their own page I/O underneath.
	meter := pg.Meter()
	prevComp := meter.SetComponent(metric.CompAVM)
	defer meter.SetComponent(prevComp)

	// Phase 1 — rule-indexed screening: route each changed tuple value to
	// the views whose band on the routed attribute it falls in, charging
	// one screen per (value, view) pair, and accumulate the A_net/D_net
	// sets at C3 per entry.
	relName := rel.Schema().Name()
	sch := rel.Schema()
	attrs := e.attrsByRel[relName]
	if len(attrs) == 0 {
		return
	}
	routed := 0
	var routedBy map[int]int
	if e.ledger != nil {
		routedBy = make(map[int]int)
	}
	route := func(tup []byte, into map[int][][]byte) {
		for _, attr := range attrs {
			v := sch.GetByName(tup, attr)
			e.router.Conflicts(routeKey(relName, attr), v, func(o ilock.Owner) {
				id := int(o)
				if _, ours := e.views[id]; !ours {
					return // lock owned by another subsystem sharing the router
				}
				meter.Screen(1)
				into[id] = append(into[id], tup)
				meter.DeltaOp(1)
				routed++
				if routedBy != nil {
					routedBy[id]++
				}
			})
		}
	}
	rsp := e.tracer.Begin("avm.route")
	rsp.Set("rel", relName)
	for _, tup := range deleted {
		route(tup, e.dnet)
	}
	for _, tup := range inserted {
		route(tup, e.anet)
	}
	rsp.Set("tokens", len(inserted)+len(deleted))
	rsp.Set("routed", routed)
	e.tracer.End(rsp)

	// Phase 2 — evaluate delta plans and patch stored views:
	// V_new = V ∪ V(a, B) − V(d, B).
	msp := e.tracer.Begin("avm.merge")
	defer e.tracer.End(msp)
	patched := 0
	defer func() { msp.Set("views", patched) }()
	ctx := &query.Ctx{Meter: meter, Pager: pg}
	costs := meter.Costs()
	for _, id := range e.order {
		a, da := e.anet[id]
		dl, dd := e.dnet[id]
		if !da && !dd {
			continue
		}
		patched++
		var before metric.Counters
		if e.ledger != nil {
			before = meter.Snapshot()
		}
		v := e.views[id]
		src := v.sourceFor(relName)
		file := e.store.MustEntry(cache.ID(id)).File()
		if dd {
			plan := src.DeltaPlan(&query.ValuesScan{Sch: sch, Tuples: dl})
			plan.Execute(ctx, func(tup []byte) bool {
				file.Delete(pg, v.Key(tup))
				return true
			})
			delete(e.dnet, id)
		}
		if da {
			plan := src.DeltaPlan(&query.ValuesScan{Sch: sch, Tuples: a})
			plan.Execute(ctx, func(tup []byte) bool {
				key := v.Key(tup)
				// An update that moves a tuple within the band deletes and
				// reinserts the same key; Delete above already removed it.
				if !file.Contains(key) {
					file.Insert(pg, key, tup)
				}
				return true
			})
			delete(e.anet, id)
		}
		if e.ledger != nil {
			// Flush so the view's deferred page writes price into its own
			// event. Views own disjoint files, so per-view flushing never
			// re-dirties another view's frames; totals are unchanged.
			pg.Flush()
			cost := meter.Since(before).Milliseconds(costs) +
				float64(routedBy[id])*(costs.C1+costs.C3)
			e.ledger.Record(cache.LedgerEvent{
				Entry:   id,
				Kind:    cache.KindMaintained,
				Op:      pg.OpToken(),
				Session: pg.Session(),
				CostMs:  cost,
			})
		}
	}
}

// Lookup returns the registered view with the given id, or nil.
func (e *Engine) Lookup(id int) *View { return e.views[id] }
