package hashidx

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

func keyOf(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }

func recFor(key, val uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], val)
	return b
}

func newTestTable(pageSize, buckets int) (*Table, *storage.Pager, *metric.Meter) {
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(pageSize), m)
	return New(p.Disk(), 16, buckets, keyOf), p, m
}

func TestInsertLookup(t *testing.T) {
	tbl, p, _ := newTestTable(64, 8)
	for i := uint64(0); i < 100; i++ {
		tbl.Insert(p, recFor(i, i*2))
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for i := uint64(0); i < 100; i++ {
		rec, ok := tbl.Lookup(p, i)
		if !ok || binary.LittleEndian.Uint64(rec[8:]) != i*2 {
			t.Fatalf("Lookup(%d) = %v, %v", i, rec, ok)
		}
	}
	if _, ok := tbl.Lookup(p, 1000); ok {
		t.Fatal("Lookup(1000) hit")
	}
	if tbl.NumBuckets() != 8 || tbl.PerPage() != 4 {
		t.Fatalf("geometry: %d buckets, %d per page", tbl.NumBuckets(), tbl.PerPage())
	}
}

func TestOverflowChains(t *testing.T) {
	tbl, p, _ := newTestTable(64, 2) // everything lands in 2 buckets
	for i := uint64(0); i < 64; i++ {
		tbl.Insert(p, recFor(i, i))
	}
	// 32 records per bucket at 4 per page: 8 pages per bucket.
	if got := tbl.Pages(); got != 16 {
		t.Fatalf("Pages = %d, want 16", got)
	}
	for i := uint64(0); i < 64; i++ {
		if _, ok := tbl.Lookup(p, i); !ok {
			t.Fatalf("Lookup(%d) missed in overflow chain", i)
		}
	}
}

func TestDuplicateKeys(t *testing.T) {
	tbl, p, _ := newTestTable(64, 4)
	tbl.Insert(p, recFor(5, 1))
	tbl.Insert(p, recFor(5, 2))
	tbl.Insert(p, recFor(5, 3))
	var vals []uint64
	tbl.LookupEach(p, 5, func(rec []byte) bool {
		vals = append(vals, binary.LittleEndian.Uint64(rec[8:]))
		return true
	})
	if len(vals) != 3 {
		t.Fatalf("LookupEach found %d records, want 3", len(vals))
	}
	// Early stop after the first.
	count := 0
	tbl.LookupEach(p, 5, func([]byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	// Delete removes exactly one.
	if !tbl.Delete(p, 5) {
		t.Fatal("Delete missed")
	}
	count = 0
	tbl.LookupEach(p, 5, func([]byte) bool { count++; return true })
	if count != 2 {
		t.Fatalf("after delete, %d records remain, want 2", count)
	}
}

func TestDeleteCompactsAndFreesPages(t *testing.T) {
	tbl, p, _ := newTestTable(64, 1)
	for i := uint64(0); i < 12; i++ { // 3 pages in the single bucket
		tbl.Insert(p, recFor(i, i))
	}
	if tbl.Pages() != 3 {
		t.Fatalf("Pages = %d", tbl.Pages())
	}
	allocated := p.Disk().NumPages()
	for i := uint64(0); i < 8; i++ {
		if !tbl.Delete(p, i) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tbl.Len() != 4 || tbl.Pages() != 1 {
		t.Fatalf("Len=%d Pages=%d after deletes, want 4 and 1", tbl.Len(), tbl.Pages())
	}
	for i := uint64(8); i < 12; i++ {
		if _, ok := tbl.Lookup(p, i); !ok {
			t.Fatalf("Lookup(%d) missed after compaction", i)
		}
	}
	// Freed pages are reused on regrowth.
	for i := uint64(0); i < 8; i++ {
		tbl.Insert(p, recFor(i, i))
	}
	if got := p.Disk().NumPages(); got != allocated {
		t.Fatalf("regrowth allocated new pages: %d vs %d", got, allocated)
	}
	if tbl.Delete(p, 999) {
		t.Fatal("Delete of absent key hit")
	}
}

func TestScanAll(t *testing.T) {
	tbl, p, _ := newTestTable(64, 4)
	want := map[uint64]bool{}
	for i := uint64(0); i < 50; i++ {
		tbl.Insert(p, recFor(i, i))
		want[i] = true
	}
	seen := map[uint64]bool{}
	tbl.ScanAll(p, func(rec []byte) bool {
		seen[keyOf(rec)] = true
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("ScanAll saw %d distinct keys, want %d", len(seen), len(want))
	}
	count := 0
	tbl.ScanAll(p, func([]byte) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestProbeIOCharges(t *testing.T) {
	tbl, p, m := newTestTable(64, 16)
	p.SetCharging(false)
	for i := uint64(0); i < 64; i++ { // exactly 4 per bucket: one page each
		tbl.Insert(p, recFor(i, i))
	}
	p.SetCharging(true)

	// A single probe reads exactly one bucket page.
	p.BeginOp()
	m.Reset()
	tbl.Lookup(p, 7)
	if got := m.Snapshot().PageReads; got != 1 {
		t.Fatalf("single probe charged %d reads, want 1", got)
	}

	// k probes within one operation touch at most min(k, buckets) distinct
	// pages — repeated buckets are free, matching the Yao-function model.
	p.BeginOp()
	m.Reset()
	for i := 0; i < 32; i++ {
		tbl.Lookup(p, uint64(i%8)) // 8 distinct buckets
	}
	if got := m.Snapshot().PageReads; got != 8 {
		t.Fatalf("32 probes over 8 buckets charged %d reads, want 8", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(64), m)
	for name, fn := range map[string]func(){
		"record too large": func() { New(p.Disk(), 128, 4, keyOf) },
		"zero buckets":     func() { New(p.Disk(), 16, 0, keyOf) },
		"nil key":          func() { New(p.Disk(), 16, 4, nil) },
		"bad record":       func() { tbl, p, _ := newTestTable(64, 4); tbl.Insert(p, make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: the table agrees with a reference multimap under random
// operations.
func TestTableMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		tbl, p, _ := newTestTable(64, 4)
		ref := map[uint64]int{} // key -> multiplicity
		total := 0
		rng := rand.New(rand.NewSource(seed))
		for _, op := range opsRaw {
			k := uint64(rng.Intn(20))
			if op%3 > 0 {
				tbl.Insert(p, recFor(k, uint64(op)))
				ref[k]++
				total++
			} else {
				had := tbl.Delete(p, k)
				if had != (ref[k] > 0) {
					return false
				}
				if ref[k] > 0 {
					ref[k]--
					total--
				}
			}
		}
		if tbl.Len() != total {
			return false
		}
		for k, want := range ref {
			got := 0
			tbl.LookupEach(p, k, func([]byte) bool { got++; return true })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
