package hashidx

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"dbproc/internal/metric"
	"dbproc/internal/storage"
)

// paperTable builds R2's geometry: 10,000 100-byte records, 250 buckets.
func paperTable(b *testing.B) (*Table, *storage.Pager) {
	b.Helper()
	m := metric.NewMeter(metric.DefaultCosts())
	p := storage.NewPager(storage.NewDisk(4000), m)
	p.SetCharging(false)
	t := New(p.Disk(), 100, 250, func(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) })
	rec := make([]byte, 100)
	for i := uint64(0); i < 10_000; i++ {
		binary.LittleEndian.PutUint64(rec, i)
		t.Insert(p, append([]byte(nil), rec...))
	}
	return t, p
}

func BenchmarkLookup(b *testing.B) {
	t, p := paperTable(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(p, uint64(rng.Intn(10_000))); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	t, p := paperTable(b)
	rec := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(10_000 + i)
		binary.LittleEndian.PutUint64(rec, k)
		t.Insert(p, append([]byte(nil), rec...))
		t.Delete(p, k)
	}
}

func BenchmarkProbeBatch(b *testing.B) {
	t, p := paperTable(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BeginOp()
		for j := 0; j < 100; j++ { // a P2 procedure's fN probes
			t.Lookup(p, uint64(rng.Intn(10_000)))
		}
	}
}
