// Package hashidx implements a static hashed primary index, the access
// method of relations R2 and R3 in the paper: records are stored in
// page-sized buckets selected by key modulo the bucket count, with
// overflow chains when a bucket page fills. An equality probe therefore
// touches one page in the well-sized case, so a batch of k random probes
// touches ~y(n, m, k) distinct pages — the quantity the cost model charges
// for index-nested-loop joins.
//
// A Table is bound to a Disk; every access method takes the calling
// session's Pager so concurrent sessions can probe one shared table while
// each charges its own meter. The live bucket directory is not internally
// synchronized — mutations are serialized by the engine's update locks,
// and snapshot readers probe an immutable published directory copy at
// their stamp instead (docs/MVCC.md).
package hashidx

import (
	"fmt"

	"dbproc/internal/storage"
)

// KeyFunc extracts the hash key from a record's bytes.
type KeyFunc func(rec []byte) uint64

// Table is a static-hash file of fixed-size records.
type Table struct {
	disk    *storage.Disk
	recSize int
	perPage int
	keyOf   KeyFunc
	dir     hashDir
	dv      *storage.DirVersions
}

// hashDir is the table's in-memory directory: the bucket chains and the
// record count. The live copy is mutated in place; published copies are
// immutable.
type hashDir struct {
	buckets []bucket
	n       int
}

type bucket struct {
	pages []storage.PageID
	count int // records in this bucket across its chain
}

// New creates an empty hash file with the given number of primary buckets.
func New(disk *storage.Disk, recSize, numBuckets int, keyOf KeyFunc) *Table {
	perPage := disk.PageSize() / recSize
	if recSize <= 0 || perPage < 1 {
		panic(fmt.Sprintf("hashidx: record size %d does not fit page size %d", recSize, disk.PageSize()))
	}
	if numBuckets < 1 {
		panic("hashidx: need at least one bucket")
	}
	if keyOf == nil {
		panic("hashidx: nil KeyFunc")
	}
	t := &Table{
		disk:    disk,
		recSize: recSize,
		perPage: perPage,
		keyOf:   keyOf,
		dir:     hashDir{buckets: make([]bucket, numBuckets)},
	}
	t.dv = disk.RegisterDir(t.snapshotDir)
	return t
}

// snapshotDir returns an immutable deep copy of the live directory.
func (t *Table) snapshotDir() any {
	d := &hashDir{buckets: make([]bucket, len(t.dir.buckets)), n: t.dir.n}
	for i := range t.dir.buckets {
		b := &t.dir.buckets[i]
		d.buckets[i] = bucket{pages: append([]storage.PageID(nil), b.pages...), count: b.count}
	}
	return d
}

// dirFor resolves the directory a reader should probe: the newest
// published copy at the pager's snapshot stamp, else the live directory.
func (t *Table) dirFor(pg *storage.Pager) *hashDir {
	if s, ok := pg.Snapshot(); ok {
		if d := t.dv.Lookup(s); d != nil {
			return d.(*hashDir)
		}
	}
	return &t.dir
}

// Len returns the number of records.
func (t *Table) Len() int { return t.dir.n }

// NumBuckets returns the number of primary buckets.
func (t *Table) NumBuckets() int { return len(t.dir.buckets) }

// Pages returns the number of allocated bucket and overflow pages.
func (t *Table) Pages() int {
	total := 0
	for i := range t.dir.buckets {
		total += len(t.dir.buckets[i].pages)
	}
	return total
}

// PerPage returns the blocking factor.
func (t *Table) PerPage() int { return t.perPage }

func (d *hashDir) bucketFor(key uint64) *bucket {
	return &d.buckets[key%uint64(len(d.buckets))]
}

// Insert stores a record in its key's bucket, allocating an overflow page
// if the chain is full. Duplicate keys are allowed.
func (t *Table) Insert(pg *storage.Pager, rec []byte) {
	if len(rec) != t.recSize {
		panic(fmt.Sprintf("hashidx: record of %d bytes, want %d", len(rec), t.recSize))
	}
	t.dv.MarkDirty()
	b := t.dir.bucketFor(t.keyOf(rec))
	slot := b.count % t.perPage
	var buf []byte
	if slot == 0 && b.count == len(b.pages)*t.perPage {
		id := t.disk.Alloc()
		b.pages = append(b.pages, id)
		buf = pg.Overwrite(id)
	} else {
		buf = pg.Update(b.pages[b.count/t.perPage])
	}
	copy(buf[slot*t.recSize:], rec)
	b.count++
	t.dir.n++
}

// Lookup returns a copy of the first record with the given key, reading
// the bucket chain until found.
func (t *Table) Lookup(pg *storage.Pager, key uint64) ([]byte, bool) {
	var out []byte
	t.LookupEach(pg, key, func(rec []byte) bool {
		out = make([]byte, t.recSize)
		copy(out, rec)
		return false
	})
	return out, out != nil
}

// LookupEach calls fn for every record with the given key until fn returns
// false. The rec slice aliases the page frame and is valid only during the
// call. Matching by key is the hash machinery itself and is not a charged
// predicate screen; callers charge C1 for the predicates they evaluate on
// the results.
func (t *Table) LookupEach(pg *storage.Pager, key uint64, fn func(rec []byte) bool) {
	b := t.dirFor(pg).bucketFor(key)
	remaining := b.count
	for _, id := range b.pages {
		if remaining <= 0 {
			return
		}
		buf := pg.Read(id)
		limit := t.perPage
		if remaining < limit {
			limit = remaining
		}
		for s := 0; s < limit; s++ {
			rec := buf[s*t.recSize : (s+1)*t.recSize]
			if t.keyOf(rec) == key && !fn(rec) {
				return
			}
		}
		remaining -= limit
	}
}

// Delete removes the first record with the given key, reporting whether
// one was present. The vacated slot is filled by the bucket's last record;
// an emptied overflow page is freed.
func (t *Table) Delete(pg *storage.Pager, key uint64) bool {
	return t.deleteWhere(pg, key, func([]byte) bool { return true })
}

// DeleteExact removes the first record whose bytes equal rec entirely,
// reporting whether one was present — the safe delete when several records
// share a hash key.
func (t *Table) DeleteExact(pg *storage.Pager, rec []byte) bool {
	if len(rec) != t.recSize {
		panic(fmt.Sprintf("hashidx: record of %d bytes, want %d", len(rec), t.recSize))
	}
	return t.deleteWhere(pg, t.keyOf(rec), func(got []byte) bool {
		for i := range rec {
			if got[i] != rec[i] {
				return false
			}
		}
		return true
	})
}

func (t *Table) deleteWhere(pg *storage.Pager, key uint64, match func([]byte) bool) bool {
	t.dv.MarkDirty()
	b := t.dir.bucketFor(key)
	// Find the record's position in the chain.
	pos := -1
	remaining := b.count
scan:
	for pi, id := range b.pages {
		if remaining <= 0 {
			break
		}
		buf := pg.Read(id)
		limit := t.perPage
		if remaining < limit {
			limit = remaining
		}
		for s := 0; s < limit; s++ {
			r := buf[s*t.recSize : (s+1)*t.recSize]
			if t.keyOf(r) == key && match(r) {
				pos = pi*t.perPage + s
				break scan
			}
		}
		remaining -= limit
	}
	if pos < 0 {
		return false
	}
	last := b.count - 1
	if pos != last {
		lastBuf := pg.Read(b.pages[last/t.perPage])
		rec := make([]byte, t.recSize)
		copy(rec, lastBuf[(last%t.perPage)*t.recSize:])
		buf := pg.Update(b.pages[pos/t.perPage])
		copy(buf[(pos%t.perPage)*t.recSize:], rec)
	} else {
		// Still a write: the slot is cleared below.
		_ = pg.Update(b.pages[pos/t.perPage])
	}
	lb := pg.Update(b.pages[last/t.perPage])
	clear(lb[(last%t.perPage)*t.recSize : (last%t.perPage+1)*t.recSize])
	b.count--
	t.dir.n--
	if b.count%t.perPage == 0 && len(b.pages) > 0 && b.count == (len(b.pages)-1)*t.perPage {
		id := b.pages[len(b.pages)-1]
		b.pages = b.pages[:len(b.pages)-1]
		pg.Drop(id)
		pg.FreePage(id)
	}
	return true
}

// ScanAll visits every record in bucket order. The rec slice is valid only
// during the call.
func (t *Table) ScanAll(pg *storage.Pager, fn func(rec []byte) bool) {
	d := t.dirFor(pg)
	for i := range d.buckets {
		b := &d.buckets[i]
		remaining := b.count
		for _, id := range b.pages {
			if remaining <= 0 {
				break
			}
			buf := pg.Read(id)
			limit := t.perPage
			if remaining < limit {
				limit = remaining
			}
			for s := 0; s < limit; s++ {
				if !fn(buf[s*t.recSize : (s+1)*t.recSize]) {
					return
				}
			}
			remaining -= limit
		}
	}
}
