// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each BenchmarkFigNN target times the regeneration of that
// figure's series and, on its first run, prints the series themselves —
// so `go test -bench=. -benchmem` doubles as the reproduction harness.
//
// Figures whose paper version plots cost curves also have a "Sim" variant
// that measures the executable system at reduced scale; BenchmarkSimFull*
// measure one full-scale (N = 100,000) workload per strategy.
package dbproc

import (
	"context"
	"io"
	"os"
	"sync"
	"testing"

	"dbproc/internal/costmodel"
	"dbproc/internal/experiments"
	"dbproc/internal/sim"
)

var printOnce sync.Map // experiment id -> *sync.Once

// benchFigure times one experiment and prints its tables once.
func benchFigure(b *testing.B, id string, opt experiments.Options) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	onceI, _ := printOnce.LoadOrStore(id, &sync.Once{})
	ctx := context.Background()
	onceI.(*sync.Once).Do(func() {
		for _, tb := range e.Run(ctx, opt) {
			tb.Render(os.Stdout)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tb := range e.Run(ctx, opt) {
			tb.Render(io.Discard)
		}
	}
}

// simOpts runs simulated validation points at 1/10 scale, 4 points per
// curve, to keep bench time reasonable.
var simOpts = experiments.Options{Sim: true, SimPoints: 4, SimSeed: 1, Scale: 10}

func BenchmarkFig02DefaultParams(b *testing.B) { benchFigure(b, "fig02", experiments.Options{}) }

func BenchmarkFig04CostVsP_HighCinval(b *testing.B) { benchFigure(b, "fig04", experiments.Options{}) }

func BenchmarkFig05CostVsP_Default(b *testing.B) { benchFigure(b, "fig05", experiments.Options{}) }

func BenchmarkFig05CostVsP_DefaultSim(b *testing.B) { benchFigure(b, "fig05", simOpts) }

func BenchmarkFig06CostVsP_LargeObjects(b *testing.B) {
	benchFigure(b, "fig06", experiments.Options{})
}

func BenchmarkFig07CostVsP_SmallObjects(b *testing.B) {
	benchFigure(b, "fig07", experiments.Options{})
}

func BenchmarkFig08CostVsP_SingleTuple(b *testing.B) { benchFigure(b, "fig08", experiments.Options{}) }

func BenchmarkFig09CostVsP_HighLocality(b *testing.B) {
	benchFigure(b, "fig09", experiments.Options{})
}

func BenchmarkFig10CostVsP_ManyObjects(b *testing.B) { benchFigure(b, "fig10", experiments.Options{}) }

func BenchmarkFig11SharingModel1(b *testing.B) { benchFigure(b, "fig11", experiments.Options{}) }

func BenchmarkFig12WinnerRegions(b *testing.B) { benchFigure(b, "fig12", experiments.Options{}) }

func BenchmarkFig13WinnerRegionsHighLocality(b *testing.B) {
	benchFigure(b, "fig13", experiments.Options{})
}

func BenchmarkFig14Closeness(b *testing.B) { benchFigure(b, "fig14", experiments.Options{}) }

func BenchmarkFig15ClosenessNoFalseInval(b *testing.B) {
	benchFigure(b, "fig15", experiments.Options{})
}

func BenchmarkFig17Model2CostVsP(b *testing.B) { benchFigure(b, "fig17", experiments.Options{}) }

func BenchmarkFig17Model2CostVsPSim(b *testing.B) { benchFigure(b, "fig17", simOpts) }

func BenchmarkFig18Model2Sharing(b *testing.B) { benchFigure(b, "fig18", experiments.Options{}) }

func BenchmarkFig19Model2WinnerRegions(b *testing.B) {
	benchFigure(b, "fig19", experiments.Options{})
}

func BenchmarkExtAdaptive(b *testing.B) { benchFigure(b, "ext-adaptive", experiments.Options{}) }

func BenchmarkExtR2Updates(b *testing.B) { benchFigure(b, "ext-r2updates", experiments.Options{}) }

func BenchmarkExtIPBias(b *testing.B) { benchFigure(b, "ext-ip", experiments.Options{}) }

func BenchmarkExtSensitivity(b *testing.B) {
	benchFigure(b, "ext-sensitivity", experiments.Options{})
}

func BenchmarkAblationReteDispatch(b *testing.B) {
	benchFigure(b, "abl-dispatch", experiments.Options{})
}

func BenchmarkAblationCoarseLocks(b *testing.B) { benchFigure(b, "abl-locks", experiments.Options{}) }

func BenchmarkAblationRootPin(b *testing.B) { benchFigure(b, "abl-rootpin", experiments.Options{}) }

func BenchmarkTableAVMComponents(b *testing.B) { benchFigure(b, "tbl-avm", experiments.Options{}) }

func BenchmarkTableRVMComponents(b *testing.B) { benchFigure(b, "tbl-rvm", experiments.Options{}) }

func BenchmarkClaimSpeedups(b *testing.B) { benchFigure(b, "claims", experiments.Options{}) }

// benchSimFull measures one full-scale paper-default workload.
func benchSimFull(b *testing.B, m costmodel.Model, s costmodel.Strategy) {
	cfg := sim.Config{Params: costmodel.Default(), Model: m, Strategy: s, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := sim.Run(cfg)
		b.ReportMetric(res.MsPerQuery, "simms/query")
		b.ReportMetric(res.PredictedMs, "modelms/query")
	}
}

func BenchmarkSimFullRecompute(b *testing.B) {
	benchSimFull(b, costmodel.Model1, costmodel.AlwaysRecompute)
}

func BenchmarkSimFullCacheInvalidate(b *testing.B) {
	benchSimFull(b, costmodel.Model1, costmodel.CacheInvalidate)
}

func BenchmarkSimFullUpdateCacheAVM(b *testing.B) {
	benchSimFull(b, costmodel.Model1, costmodel.UpdateCacheAVM)
}

func BenchmarkSimFullUpdateCacheRVM(b *testing.B) {
	benchSimFull(b, costmodel.Model1, costmodel.UpdateCacheRVM)
}

func BenchmarkSimFullModel2RVM(b *testing.B) {
	benchSimFull(b, costmodel.Model2, costmodel.UpdateCacheRVM)
}
